"""ADIO driver for the paper's versioning storage backend.

MPI atomicity is *native* here: every (possibly non-contiguous) write vector
becomes exactly one snapshot of the underlying BLOB, published in ticket
order by the version manager, so the driver never needs to lock anything —
which is the whole point of the paper.

The driver can additionally route non-atomic writes through the write
pipeline's coalescer (``write_coalescing=True``): MPI only requires
non-atomic writes to be visible after ``MPI_File_sync`` / ``MPI_File_close``
(or, here, any read or atomic-mode write on the same handle), so queued
writes accumulate into one merged snapshot per flush point — one
``allocate``, one version ticket, one metadata build for a whole train of
small writes.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.core.listio import IOVector
from repro.errors import MPIIOError
from repro.mpiio.adio.base import ADIODriver
from repro.mpiio.adio.collective import CollectiveAggregator, CollectiveReader
from repro.vstore.client import VectoredClient

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.blobseer.deployment import BlobSeerDeployment
    from repro.cluster.node import Node
    from repro.mpi.simcomm import Communicator


class VersioningDriver(ADIODriver):
    """ROMIO-style ADIO module backed by :mod:`repro.vstore`.

    ``write_coalescing`` queues non-atomic writes in the client's
    :class:`~repro.blobseer.writepath.coalescer.WriteCoalescer`; they are
    committed as merged snapshot batches at ``sync``/``close``, before any
    read, and before any atomic-mode write (which must serialize behind
    them in ticket order).

    ``collective_buffering`` routes non-atomic ``write_at_all`` calls
    through two-phase collective buffering
    (:class:`~repro.mpiio.adio.collective.CollectiveAggregator`): the ranks
    exchange their pieces so ``collective_aggregators`` ranks commit the
    whole group's access as that many merged stripe batches — one version
    ticket and one metadata build each — instead of one commit per rank.
    The aggregator count falls back to
    ``ClusterConfig.collective_aggregators``, then to one per four ranks.

    ``collective_reads`` routes non-atomic ``read_at_all`` calls through
    aggregated metadata resolution
    (:class:`~repro.mpiio.adio.collective.CollectiveReader`): the same
    ``collective_aggregators`` ranks act as resolvers, pin one snapshot
    version for the group (one ``latest`` RPC — or none, when a read hint
    is pending), walk the segment tree once for the union extent and
    scatter the fetched pieces back, so non-resolver ranks spend zero
    metadata control RPCs.  ``None`` (the default) follows
    ``collective_buffering``, so a collectively-buffered driver aggregates
    both directions unless reads are explicitly switched off.

    Remaining keyword options forward to
    :class:`~repro.vstore.client.VectoredClient` (e.g. ``write_pipelining``,
    ``write_through_cache``, ``coalesce_max_writes``,
    ``coalesce_max_delay``).
    """

    name = "versioning"
    native_atomicity = True

    def __init__(self, deployment: "BlobSeerDeployment", node: "Node",
                 rank_name: Optional[str] = None, *,
                 write_coalescing: bool = False,
                 collective_buffering: bool = False,
                 collective_aggregators: Optional[int] = None,
                 collective_reads: Optional[bool] = None,
                 **client_options):
        super().__init__()
        self.deployment = deployment
        self.write_coalescing = write_coalescing
        self.collective_buffering = collective_buffering
        self.collective_reads = (collective_buffering
                                 if collective_reads is None
                                 else collective_reads)
        self.client = VectoredClient(deployment, node,
                                     name=rank_name or f"adio:{node.name}",
                                     **client_options)
        #: two-phase exchange engine for ``write_at_all`` (always built; it
        #: only acts when ``collective_buffering`` routes a call through it)
        self.aggregator = CollectiveAggregator(
            self.client, num_aggregators=collective_aggregators)
        #: aggregated-resolution engine for ``read_at_all`` (always built;
        #: it only acts when ``collective_reads`` routes a call through it)
        self.reader = CollectiveReader(
            self.client, num_resolvers=collective_aggregators)

    # ------------------------------------------------------------------
    @property
    def trace_context(self):
        """The rank's span context (``None`` unless the cluster traces)."""
        return self.client.trace_ctx

    @property
    def observability(self):
        """The cluster's observability handle (digests, flight recorder)."""
        return self.client.cluster.obs

    # ------------------------------------------------------------------
    def open(self, path: str, size_hint: int, create: bool, rank: int = 0,
             comm: Optional["Communicator"] = None):
        """Collective open: rank 0 creates the BLOB, everyone then opens it."""
        if create and size_hint <= 0:
            raise MPIIOError(
                "the versioning driver needs a positive size_hint to size the BLOB")
        if create and rank == 0:
            yield from self.client.create_blob(path, size_hint, exist_ok=True)
        if comm is not None:
            yield from comm.barrier(rank)
        descriptor = yield from self.client.open_blob(path)
        return descriptor

    def write_vector(self, path: str, vector: IOVector, atomic: bool,
                     rank: int = 0, comm: Optional["Communicator"] = None):
        """One vectored write = one atomic snapshot (locking-free)."""
        self._account_write(vector)
        if self.write_coalescing and not atomic:
            yield from self.client.vwrite_queued(path, vector)
            return vector.total_bytes()
        # an atomic write must take its ticket *after* every write queued
        # before it; the client flushes the queue itself before any
        # immediate commit, so program order is preserved here
        if atomic:
            receipt = yield from self.client.vwrite_and_wait(path, vector)
        else:
            receipt = yield from self.client.vwrite(path, vector)
        return receipt.bytes_written

    def write_vector_all(self, path: str, vector: IOVector, atomic: bool,
                         rank: int = 0, comm: Optional["Communicator"] = None):
        """Collective write: two-phase aggregation when it is worth doing.

        Atomic-mode collectives bypass the aggregator (splitting one rank's
        access across stripe snapshots could expose a torn rank-write to a
        concurrent reader, which atomic mode forbids) and so do jobs of one
        rank — both keep the native one-write-one-snapshot path.
        """
        if not self.write_all_synchronizes(atomic, comm):
            written = yield from super().write_vector_all(
                path, vector, atomic, rank=rank, comm=comm)
            return written
        if len(vector) > 0:
            self._account_write(vector)
        written = yield from self.aggregator.collective_write(
            path, vector, rank, comm)
        return written

    def write_all_synchronizes(self, atomic: bool,
                               comm: Optional["Communicator"]) -> bool:
        """True exactly when the aggregated path handles the collective.

        Every exit of :meth:`~repro.mpiio.adio.collective.
        CollectiveAggregator.collective_write` passes through a group-wide
        exchange, so the File layer's closing barrier would be a second,
        redundant rendezvous.
        """
        return self.collective_buffering and not atomic \
            and comm is not None and comm.size > 1

    def read_vector_all(self, path: str, vector: IOVector, atomic: bool,
                        rank: int = 0, comm: Optional["Communicator"] = None):
        """Collective read: aggregated resolution when it is worth doing.

        Atomic-mode collectives bypass the reader (an atomic read must ask
        the version manager for the true latest on every rank, never a
        pinned group version that could predate another rank's completed
        atomic write) and so do jobs of one rank — both keep the native
        independent read path.
        """
        if not self.read_all_synchronizes(atomic, comm):
            pieces = yield from super().read_vector_all(
                path, vector, atomic, rank=rank, comm=comm)
            return pieces
        if len(vector) > 0:
            self._account_read(vector)
        pieces = yield from self.reader.collective_read(
            path, vector, rank, comm)
        return pieces

    def read_all_synchronizes(self, atomic: bool,
                              comm: Optional["Communicator"]) -> bool:
        """True exactly when the aggregated path handles the collective.

        Every exit of :meth:`~repro.mpiio.adio.collective.CollectiveReader.
        collective_read` passes through a group-wide exchange, so the File
        layer's closing barrier would be a second, redundant rendezvous.
        """
        return self.collective_reads and not atomic \
            and comm is not None and comm.size > 1

    def read_vector(self, path: str, vector: IOVector, atomic: bool,
                    rank: int = 0, comm: Optional["Communicator"] = None):
        """Reads always come from one published snapshot, so they are atomic."""
        self._account_read(vector)
        if self._needs_flush_barrier(path):
            # read-your-writes: queued writes must be published first
            yield from self.client.vbarrier(path)
        if atomic:
            # atomic mode promises visibility of every other rank's
            # completed atomic write: the read must ask the version manager
            # for the true latest, never serve from a hint — dropped *after*
            # the fence, because the barrier re-plants one when it flushes
            self.client.drop_read_hint(path)
        pieces = yield from self.client.vread(path, vector)
        return pieces

    def _needs_flush_barrier(self, path: str) -> bool:
        """Whether a read must fence the write pipeline first.

        Only when this client actually has unpublished state of its own:
        queued writes, unjoined deferred completions, or a committed batch
        whose publication still lags the known watermark (an earlier ticket
        held by another writer delays it — the inline ``complete`` then
        returns a watermark below our own version).  A collective write
        leaves none of these behind (its stripes were committed and the
        watermark shared), so the read hint it planted survives to the read
        and elides the ``latest`` round-trip.
        """
        if not (self.write_coalescing or self.collective_buffering):
            return False
        return self.client.has_unpublished_state(path)

    def sync(self, path: str):
        """MPI_File_sync: commit and publish any queued writes."""
        if self.write_coalescing or self.collective_buffering:
            yield from self.client.vbarrier(path)
        return None

    def close(self, path: str):
        """Close flushes like a sync (MPI ties visibility to close as well)."""
        if self.write_coalescing or self.collective_buffering:
            yield from self.client.vbarrier(path)
        return None

    def file_size(self, path: str):
        """The requested size recorded in the BLOB descriptor."""
        descriptor = yield from self.client.open_blob(path)
        return descriptor.requested_size
