"""ADIO driver for the paper's versioning storage backend.

MPI atomicity is *native* here: every (possibly non-contiguous) write vector
becomes exactly one snapshot of the underlying BLOB, published in ticket
order by the version manager, so the driver never needs to lock anything —
which is the whole point of the paper.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.core.listio import IOVector
from repro.errors import MPIIOError
from repro.mpiio.adio.base import ADIODriver
from repro.vstore.client import VectoredClient

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.blobseer.deployment import BlobSeerDeployment
    from repro.cluster.node import Node
    from repro.mpi.simcomm import Communicator


class VersioningDriver(ADIODriver):
    """ROMIO-style ADIO module backed by :mod:`repro.vstore`."""

    name = "versioning"
    native_atomicity = True

    def __init__(self, deployment: "BlobSeerDeployment", node: "Node",
                 rank_name: Optional[str] = None):
        super().__init__()
        self.deployment = deployment
        self.client = VectoredClient(deployment, node,
                                     name=rank_name or f"adio:{node.name}")

    # ------------------------------------------------------------------
    def open(self, path: str, size_hint: int, create: bool, rank: int = 0,
             comm: Optional["Communicator"] = None):
        """Collective open: rank 0 creates the BLOB, everyone then opens it."""
        if create and size_hint <= 0:
            raise MPIIOError(
                "the versioning driver needs a positive size_hint to size the BLOB")
        if create and rank == 0:
            yield from self.client.create_blob(path, size_hint, exist_ok=True)
        if comm is not None:
            yield from comm.barrier(rank)
        descriptor = yield from self.client.open_blob(path)
        return descriptor

    def write_vector(self, path: str, vector: IOVector, atomic: bool,
                     rank: int = 0, comm: Optional["Communicator"] = None):
        """One vectored write = one atomic snapshot (locking-free)."""
        self._account_write(vector)
        if atomic:
            receipt = yield from self.client.vwrite_and_wait(path, vector)
        else:
            receipt = yield from self.client.vwrite(path, vector)
        return receipt.bytes_written

    def read_vector(self, path: str, vector: IOVector, atomic: bool,
                    rank: int = 0, comm: Optional["Communicator"] = None):
        """Reads always come from one published snapshot, so they are atomic."""
        self._account_read(vector)
        pieces = yield from self.client.vread(path, vector)
        return pieces

    def file_size(self, path: str):
        """The requested size recorded in the BLOB descriptor."""
        descriptor = yield from self.client.open_blob(path)
        return descriptor.requested_size
