"""Conflict-detection ADIO driver (Sehrish, Wang and Thakur, Euro PVM/MPI'09).

The related-work optimization the paper discusses: before a *collective*
atomic write, the ranks exchange their flattened access patterns; ranks whose
regions overlap nobody else's skip locking entirely, while conflicting ranks
fall back to covering-extent locks.  The exchange itself (an allgather of the
region lists) is the "unnecessary overhead … introduced for non-overlapping
concurrent I/O" acknowledged by its authors — visible in the EXP1b benchmark.

For independent (non-collective) writes there is nothing to compare against,
so the driver behaves exactly like the covering-extent driver.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.core.listio import IOVector
from repro.core.regions import RegionList
from repro.mpiio.adio.posix_locking import PosixLockingDriver
from repro.posixfs.lock_manager import LockMode

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mpi.simcomm import Communicator


class ConflictDetectDriver(PosixLockingDriver):
    """Skip locking for collective accesses proven conflict-free."""

    name = "conflict-detect"
    native_atomicity = False

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        #: how many collective writes skipped locking
        self.locks_skipped: int = 0
        #: how many collective writes still had to lock
        self.locks_taken: int = 0

    def write_vector(self, path: str, vector: IOVector, atomic: bool,
                     rank: int = 0, comm: Optional["Communicator"] = None):
        if not atomic or comm is None:
            written = yield from super().write_vector(path, vector, atomic,
                                                      rank, comm)
            return written

        # exchange access patterns (the detection overhead)
        my_regions = vector.region_list().normalized()
        all_regions = yield from comm.allgather(rank, my_regions)

        conflict = any(index != rank and my_regions.overlaps(other)
                       for index, other in enumerate(all_regions))

        if not conflict:
            self.locks_skipped += 1
            self._account_write(vector)
            written = yield from self.client.write_vector(path, vector)
            return written

        self.locks_taken += 1
        written = yield from super().write_vector(path, vector, True, rank, comm)
        return written
