"""Failure-injection driver: POSIX writes with no MPI-I/O-layer locking.

This driver deliberately ignores atomic mode.  Under concurrent overlapping
non-contiguous writes it produces interleaved, non-serializable file states —
exactly the inconsistency the paper's introduction warns about.  The test
suite uses it to prove that the atomicity checker (and thus the property
tests guarding the real drivers) actually detects violations.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.core.listio import IOVector
from repro.core.regions import RegionList
from repro.mpiio.adio.posix_locking import PosixLockingDriver
from repro.posixfs.lock_manager import LockMode

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mpi.simcomm import Communicator


class NoLockDriver(PosixLockingDriver):
    """No locking at the MPI-I/O layer — atomic mode is silently ignored."""

    name = "nolock"
    native_atomicity = False

    def write_vector(self, path: str, vector: IOVector, atomic: bool,
                     rank: int = 0, comm: Optional["Communicator"] = None):
        self._account_write(vector)
        written = yield from self.client.write_vector(path, vector)
        return written

    def read_vector(self, path: str, vector: IOVector, atomic: bool,
                    rank: int = 0, comm: Optional["Communicator"] = None):
        self._account_read(vector)
        pieces = yield from self.client.read_vector(path, vector)
        return pieces
