"""List-locking ADIO driver: lock each accessed range instead of the extent.

A finer-grain variant of the locking baseline: instead of the covering
extent, only the byte ranges actually touched by the access are locked (in a
global canonical order, so writers cannot deadlock).  This removes the false
conflicts on unaccessed gap bytes but multiplies the number of lock RPCs —
the trade-off the lock-granularity ablation (ABL2) quantifies.
"""

from __future__ import annotations

from repro.mpiio.adio.posix_locking import PosixLockingDriver, _ListLockMixin


class PosixListLockDriver(_ListLockMixin, PosixLockingDriver):
    """Per-range locking over the POSIX parallel file system."""

    name = "posix-listlock"
    native_atomicity = False
