"""The MPI-I/O ``File`` object.

This mirrors the subset of the MPI-I/O interface the paper's workloads use:

* collective open with an access mode (:class:`AccessMode`);
* per-rank file views set with derived datatypes (:meth:`File.set_view`);
* explicit-offset reads and writes, independent (``read_at`` / ``write_at``)
  and collective (``read_at_all`` / ``write_at_all``);
* atomic mode (:meth:`File.set_atomicity`) with the semantics of the MPI
  standard: in atomic mode, concurrent overlapping writes — including
  non-contiguous ones described by file views — must not interleave.

Like ROMIO, the File object contains no storage code: it flattens the access
against the rank's view and hands the resulting vector to its ADIO driver.
"""

from __future__ import annotations

import enum
from typing import List, Optional, TYPE_CHECKING

from repro.core.listio import IOVector
from repro.errors import MPIIOError
from repro.mpi.datatypes import BYTE, Datatype
from repro.mpiio.flatten import FileView, build_read_vector, build_write_vector

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mpi.simcomm import Communicator
    from repro.mpiio.adio.base import ADIODriver


class AccessMode(enum.Flag):
    """MPI_File_open access modes (the subset the workloads need)."""

    RDONLY = enum.auto()
    WRONLY = enum.auto()
    RDWR = enum.auto()
    CREATE = enum.auto()
    EXCL = enum.auto()

    @classmethod
    def default_write(cls) -> "AccessMode":
        """``CREATE | RDWR``, the mode every workload opens its dump file with."""
        return cls.CREATE | cls.RDWR


class File:
    """One rank's handle on a shared MPI-I/O file."""

    def __init__(self, driver: "ADIODriver", path: str, amode: AccessMode,
                 rank: int = 0, comm: Optional["Communicator"] = None):
        self.driver = driver
        self.path = path
        self.amode = amode
        self.rank = rank
        self.comm = comm
        self.view = FileView()
        self._atomic = False
        self._open = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def open(cls, driver: "ADIODriver", path: str,
             amode: Optional[AccessMode] = None, rank: int = 0,
             comm: Optional["Communicator"] = None, size_hint: int = 0):
        """Open (collectively when ``comm`` is given) the file ``path``.

        Generator method: run it inside the rank's simulated process.
        """
        amode = amode or AccessMode.default_write()
        handle = cls(driver, path, amode, rank=rank, comm=comm)
        yield from driver.open(path, size_hint, create=bool(amode & AccessMode.CREATE),
                               rank=rank, comm=comm)
        handle._open = True
        return handle

    def close(self):
        """Close the handle (collective in MPI; here a local driver hook)."""
        self._ensure_open()
        yield from self.driver.close(self.path)
        self._open = False
        return None

    def sync(self):
        """MPI_File_sync."""
        self._ensure_open()
        yield from self.driver.sync(self.path)
        return None

    def get_size(self):
        """Current file size as known by the backend."""
        self._ensure_open()
        size = yield from self.driver.file_size(self.path)
        return size

    # ------------------------------------------------------------------
    # view and atomicity (local, non-generator operations)
    # ------------------------------------------------------------------
    def set_view(self, displacement: int = 0, etype: Datatype = BYTE,
                 filetype: Optional[Datatype] = None) -> None:
        """Install this rank's file view (``MPI_File_set_view``)."""
        self.view = FileView(displacement=displacement, etype=etype,
                             filetype=filetype or etype)

    def set_atomicity(self, flag: bool) -> None:
        """Enable/disable MPI atomic mode (``MPI_File_set_atomicity``)."""
        self._atomic = bool(flag)

    def get_atomicity(self) -> bool:
        """Current atomic-mode flag."""
        return self._atomic

    # ------------------------------------------------------------------
    # data access
    # ------------------------------------------------------------------
    def write_at(self, offset: int, data: bytes):
        """Independent explicit-offset write through the rank's view."""
        self._ensure_open()
        self._ensure_writable()
        vector = build_write_vector(self.view, offset, bytes(data))
        if len(vector) == 0:
            return 0
        token = self._begin_op("file.write_at", offset,
                               vector.total_bytes())
        try:
            written = yield from self.driver.write_vector(
                self.path, vector, atomic=self._atomic, rank=self.rank,
                comm=None)
        finally:
            self._end_op(token)
        return written

    def write_at_all(self, offset: int, data: bytes):
        """Collective explicit-offset write (all ranks must call it).

        Routed through the driver's collective entry point: drivers with
        collective buffering coordinate the ranks (exchange + aggregated
        commit), every other driver falls back to independent writes.  Ranks
        whose view maps to an empty access still participate, as MPI
        requires of a collective call.
        """
        self._ensure_open()
        self._ensure_writable()
        vector = build_write_vector(self.view, offset, bytes(data))
        token = self._begin_op("file.write_at_all", offset,
                               vector.total_bytes())
        try:
            written = yield from self.driver.write_vector_all(
                self.path, vector, atomic=self._atomic, rank=self.rank,
                comm=self.comm)
            if self.comm is not None \
                    and not self.driver.write_all_synchronizes(self._atomic,
                                                               self.comm):
                yield from self.comm.barrier(self.rank)
        finally:
            self._end_op(token)
        return written

    def read_at(self, offset: int, size: int):
        """Independent explicit-offset read through the rank's view."""
        self._ensure_open()
        vector = build_read_vector(self.view, offset, size)
        if len(vector) == 0:
            return b""
        token = self._begin_op("file.read_at", offset,
                               vector.total_bytes())
        try:
            pieces = yield from self.driver.read_vector(
                self.path, vector, atomic=self._atomic, rank=self.rank,
                comm=None)
        finally:
            self._end_op(token)
        return b"".join(pieces)

    def read_at_all(self, offset: int, size: int):
        """Collective explicit-offset read (all ranks must call it).

        Routed through the driver's collective entry point: drivers with
        aggregated metadata resolution coordinate the ranks (one shared
        snapshot pin, resolver-owned tree walks, data scatter), every other
        driver falls back to independent reads.  Ranks whose view maps to
        an empty access still participate, as MPI requires of a collective
        call.
        """
        self._ensure_open()
        vector = build_read_vector(self.view, offset, size)
        token = self._begin_op("file.read_at_all", offset,
                               vector.total_bytes())
        try:
            pieces = yield from self.driver.read_vector_all(
                self.path, vector, atomic=self._atomic, rank=self.rank,
                comm=self.comm)
            if self.comm is not None \
                    and not self.driver.read_all_synchronizes(self._atomic,
                                                              self.comm):
                yield from self.comm.barrier(self.rank)
        finally:
            self._end_op(token)
        return b"".join(pieces)

    def _begin_op(self, name: str, offset: int, nbytes: int):
        """Open the observation bracket of one file operation.

        Roots the mainline span (when the backend traces) and notes the
        operation start for the latency digest and flight recorder taps.
        Returns an opaque token for :meth:`_end_op` — ``None`` when every
        channel is disabled, which is what the disabled path pays.
        """
        ctx = self.driver.trace_context
        obs = self.driver.observability
        if ctx is None and (obs is None or (obs.digests is None
                                            and obs.flight is None)):
            return None
        span = None
        if ctx is not None:
            span = ctx.begin(name, cat="mpiio", rank=self.rank,
                             path=self.path, offset=offset, bytes=nbytes)
        started = obs.sim.now if obs is not None else 0.0
        return (name, span, ctx, obs, started)

    def _end_op(self, token) -> None:
        """Close the bracket: finish the span, feed the digest/flight taps."""
        if token is None:
            return
        name, span, ctx, obs, started = token
        if span is not None:
            ctx.finish(span)
        if obs is not None:
            now = obs.sim.now
            if obs.digests is not None:
                obs.digests.op(name, now - started)
            if obs.flight is not None:
                obs.flight.record(started, now, "op", f"rank{self.rank}",
                                  name)

    # ------------------------------------------------------------------
    def _ensure_open(self) -> None:
        if not self._open:
            raise MPIIOError(f"file {self.path!r} is not open")

    def _ensure_writable(self) -> None:
        if not (self.amode & (AccessMode.WRONLY | AccessMode.RDWR)):
            raise MPIIOError(f"file {self.path!r} was opened read-only")
