"""MPI-I/O layer: file views, atomic mode, and pluggable ADIO drivers.

This package plays the role ROMIO plays in the paper: it exposes the MPI-I/O
``File`` interface (open / set_view / write_at[_all] / read_at[_all] /
set_atomicity) to the application, flattens derived-datatype file views into
byte-region lists, and delegates the actual data movement to an *ADIO
driver*.  Four drivers reproduce the approaches discussed in the paper:

=====================  =======================================================
``versioning``          the paper's approach: native non-contiguous atomic
                        writes on the versioning backend — no locking at all
``posix-locking``       the traditional approach: lock the smallest contiguous
                        extent covering the whole access on the Lustre-like
                        file system, then issue POSIX writes
``posix-listlock``      lock each accessed range individually instead of the
                        covering extent (finer-grain locking)
``conflict-detect``     Sehrish et al. [9]: ranks of a collective exchange
                        their access patterns and skip locking when no
                        overlap exists
``nolock``              failure injection: no locking at all on the POSIX
                        backend — violates MPI atomicity under concurrency
                        (used to validate the atomicity checker)
=====================  =======================================================
"""

from repro.mpiio.file import File, AccessMode
from repro.mpiio.flatten import flatten_view_access, FileView
from repro.mpiio.adio.base import ADIODriver
from repro.mpiio.adio.versioning import VersioningDriver
from repro.mpiio.adio.posix_locking import PosixLockingDriver
from repro.mpiio.adio.posix_listlock import PosixListLockDriver
from repro.mpiio.adio.conflict_detect import ConflictDetectDriver
from repro.mpiio.adio.nolock import NoLockDriver

__all__ = [
    "File",
    "AccessMode",
    "FileView",
    "flatten_view_access",
    "ADIODriver",
    "VersioningDriver",
    "PosixLockingDriver",
    "PosixListLockDriver",
    "ConflictDetectDriver",
    "NoLockDriver",
]
