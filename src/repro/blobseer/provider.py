"""Data providers: the chunk stores of BlobSeer.

:class:`DataProviderStore` is the pure (simulation-independent) chunk store;
:class:`SimDataProvider` wraps one store as a cluster service, charging disk
and network time for every chunk transferred.
"""

from __future__ import annotations

from typing import Dict, Optional, TYPE_CHECKING

from repro.blobseer.chunk import ChunkKey
from repro.cluster.rpc import Service
from repro.errors import ChunkNotFound, ProviderUnavailable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.node import Node


class DataProviderStore:
    """In-memory map of chunk key -> immutable payload, with usage counters."""

    def __init__(self, provider_id: str):
        self.provider_id = provider_id
        self._chunks: Dict[ChunkKey, bytes] = {}
        #: cumulative number of bytes ever stored (for load-balancing stats)
        self.bytes_written: int = 0
        self.bytes_read: int = 0
        #: set True by failure-injection tests to simulate a crashed provider
        self.failed: bool = False

    # ------------------------------------------------------------------
    def put_chunk(self, key: ChunkKey, data: bytes) -> None:
        """Store an immutable chunk.  Re-putting the same key is idempotent."""
        self._ensure_alive()
        existing = self._chunks.get(key)
        if existing is not None and existing != data:
            raise ProviderUnavailable(
                f"chunk {key} re-uploaded with different content on "
                f"{self.provider_id}; chunks are immutable")
        self._chunks[key] = bytes(data)
        self.bytes_written += len(data)

    def get_chunk(self, key: ChunkKey) -> bytes:
        """Fetch a chunk payload."""
        self._ensure_alive()
        try:
            data = self._chunks[key]
        except KeyError:
            raise ChunkNotFound(f"{key} not stored on {self.provider_id}") from None
        self.bytes_read += len(data)
        return data

    def has_chunk(self, key: ChunkKey) -> bool:
        """True if the chunk is stored here."""
        return key in self._chunks

    def chunk_count(self) -> int:
        """Number of chunks held."""
        return len(self._chunks)

    def stored_bytes(self) -> int:
        """Total payload bytes currently held."""
        return sum(len(data) for data in self._chunks.values())

    # ------------------------------------------------------------------
    def fail(self) -> None:
        """Mark the provider as crashed (every further access raises)."""
        self.failed = True

    def recover(self) -> None:
        """Clear the crashed flag (chunks survive, as on a restarted node)."""
        self.failed = False

    def _ensure_alive(self) -> None:
        if self.failed:
            raise ProviderUnavailable(f"provider {self.provider_id} is down")


class SimDataProvider(Service):
    """A data provider deployed on a cluster node.

    The handlers charge disk time when the cluster is configured with
    ``persist_to_disk=True`` (the default); the RPC transport separately
    charges network time proportional to the chunk size.
    """

    def __init__(self, node: "Node", store: Optional[DataProviderStore] = None,
                 persist_to_disk: bool = True):
        super().__init__(node, name=f"provider:{node.name}")
        self.store = store or DataProviderStore(provider_id=node.name)
        self.persist_to_disk = persist_to_disk

    @property
    def provider_id(self) -> str:
        """Identifier used by the provider manager's allocation tables."""
        return self.store.provider_id

    # ------------------------------------------------------------------
    # RPC handlers (generator methods)
    # ------------------------------------------------------------------
    def put_chunk(self, key: ChunkKey, data: bytes):
        """Store ``data`` under ``key``, charging local disk time."""
        if self.persist_to_disk:
            yield from self.node.disk_io(len(data))
        self.store.put_chunk(key, data)
        return len(data)

    def put_chunks(self, items):
        """Store a batch of ``(key, data)`` pairs in one request.

        Clients group the chunks of one write by destination provider and
        ship each group as a single RPC (as the BlobSeer client library
        does), so many small pieces do not pay one disk/network round trip
        each.  The provider appends the batch with a single disk operation.
        """
        items = list(items)
        total = sum(len(data) for _key, data in items)
        if self.persist_to_disk and total:
            yield from self.node.disk_io(total)
        for key, data in items:
            self.store.put_chunk(key, data)
        return total

    def get_chunk(self, key: ChunkKey):
        """Return the payload of ``key``, charging local disk time."""
        data = self.store.get_chunk(key)
        if self.persist_to_disk:
            yield from self.node.disk_io(len(data))
        return data

    def get_chunk_range(self, key: ChunkKey, offset: int, length: int):
        """Return ``length`` bytes of ``key`` starting at ``offset``.

        Fine-grain sub-chunk reads are part of BlobSeer's interface; only the
        requested bytes are charged to the disk and shipped back.
        """
        data = self.store.get_chunk(key)
        piece = data[offset:offset + length]
        if len(piece) != length:
            raise ChunkNotFound(
                f"range [{offset}, {offset + length}) outside chunk {key} "
                f"of size {len(data)}")
        if self.persist_to_disk:
            yield from self.node.disk_io(length)
        return piece

    def get_chunk_ranges(self, requests):
        """Serve a batch of ``(key, offset, length)`` range reads in one request."""
        requests = list(requests)
        pieces = []
        total = 0
        for key, offset, length in requests:
            data = self.store.get_chunk(key)
            piece = data[offset:offset + length]
            if len(piece) != length:
                raise ChunkNotFound(
                    f"range [{offset}, {offset + length}) outside chunk {key} "
                    f"of size {len(data)}")
            pieces.append(piece)
            total += length
        if self.persist_to_disk and total:
            yield from self.node.disk_io(total)
        return pieces
