"""Chunk identifiers.

Chunks are immutable: once uploaded to a data provider they are never
modified, which is what lets concurrent writers proceed without any
coordination on the data path (the paper's key argument against locking).
A chunk key is generated entirely on the writer's side — it does not embed
the snapshot version, because the version is only assigned *after* the data
has been uploaded.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class ChunkKey:
    """Globally unique, client-generated identifier of one stored chunk."""

    writer: str
    sequence: int

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.writer}#{self.sequence}"


class ChunkKeyFactory:
    """Per-writer factory of unique chunk keys."""

    def __init__(self, writer: str):
        self.writer = writer
        self._counter = itertools.count()

    def next_key(self) -> ChunkKey:
        """A fresh key, unique within this writer."""
        return ChunkKey(self.writer, next(self._counter))
