"""The BlobSeer client library: write and read protocols.

A client runs inside a simulated process (an MPI rank, in the paper's
setting) on a compute node.  Its methods are *generator methods*: they yield
simulation events while data moves over the network and through disks, and
finally return their result.

Write protocol (one vectored write = one snapshot):

1. split the payload into chunk-aligned pieces;
2. ask the provider manager where to place each piece (one small RPC);
3. upload all pieces to their data providers **in parallel and with no
   coordination with other writers** — this is the heavy, fully parallel part;
4. obtain a version ticket from the version manager (small RPC);
5. build the copy-on-write metadata nodes for the new snapshot and store them
   on the metadata providers (batched per shard);
6. report completion; the version manager publishes snapshots in ticket
   order.

Read protocol: resolve the requested ranges against the snapshot's segment
tree (shadowed subtrees are followed to older versions), then fetch the
resolved chunk extents from the data providers in parallel.

The stock BlobSeer API exposes only *contiguous* :meth:`BlobClient.write` /
:meth:`BlobClient.read`; the non-contiguous extension of the paper is the
:class:`repro.vstore.client.VectoredClient` subclass, which reuses the
internal vectored machinery defined here.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.blobseer.blob import BlobDescriptor
from repro.blobseer.chunk import ChunkKeyFactory
from repro.blobseer.metadata.cache import MetadataNodeCache
from repro.blobseer.metadata.segment_tree import (
    NodeRequest,
    ReadPlanner,
    build_leaf_segments,
    build_write_metadata,
    split_vector_into_pieces,
)
from repro.blobseer.metadata.store import PartitionedMetadataStore
from repro.core.listio import IOVector
from repro.core.regions import Region, RegionList
from repro.errors import StorageError, VersionNotFound

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.blobseer.deployment import BlobSeerDeployment
    from repro.cluster.node import Node


class WriteReceipt:
    """What a completed vectored write returns to its caller."""

    __slots__ = ("blob_id", "version", "bytes_written", "chunks", "metadata_nodes",
                 "started_at", "finished_at")

    def __init__(self, blob_id: str, version: int, bytes_written: int,
                 chunks: int, metadata_nodes: int,
                 started_at: float, finished_at: float):
        self.blob_id = blob_id
        self.version = version
        self.bytes_written = bytes_written
        self.chunks = chunks
        self.metadata_nodes = metadata_nodes
        self.started_at = started_at
        self.finished_at = finished_at

    @property
    def elapsed(self) -> float:
        """Simulated duration of the write."""
        return self.finished_at - self.started_at

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<WriteReceipt {self.blob_id} v{self.version} "
                f"{self.bytes_written}B in {self.elapsed:.6f}s>")


class BlobClient:
    """Client-side access to a :class:`~repro.blobseer.deployment.BlobSeerDeployment`.

    The metadata read path is optimized by default: an immutable-node cache
    (:class:`~repro.blobseer.metadata.cache.MetadataNodeCache`) answers
    repeated lookups locally, and the remaining lookups of each tree level
    are shipped as one batched ``get_nodes`` RPC per metadata shard.  Both
    optimizations can be switched off (``enable_metadata_cache=False`` /
    ``metadata_batching=False``) to measure the one-RPC-per-node baseline.
    """

    def __init__(self, deployment: "BlobSeerDeployment", node: "Node",
                 name: Optional[str] = None, *,
                 metadata_cache: Optional[MetadataNodeCache] = None,
                 enable_metadata_cache: bool = True,
                 metadata_batching: bool = True):
        self.deployment = deployment
        self.cluster = deployment.cluster
        self.node = node
        self.name = name or f"client:{node.name}"
        self._chunk_keys = ChunkKeyFactory(self.name)
        self._descriptors: Dict[str, BlobDescriptor] = {}
        if metadata_cache is not None:
            self.metadata_cache: Optional[MetadataNodeCache] = metadata_cache
        elif enable_metadata_cache:
            self.metadata_cache = MetadataNodeCache()
        else:
            self.metadata_cache = None
        self.metadata_batching = metadata_batching
        #: client-side counters (aggregated by the benchmark harness)
        self.bytes_written: int = 0
        self.bytes_read: int = 0
        self.writes: int = 0
        self.reads: int = 0
        #: metadata read-path counters (RPC round-trips and nodes used)
        self.metadata_read_rpcs: int = 0
        self.metadata_nodes_fetched: int = 0

    # ------------------------------------------------------------------
    # small helpers
    # ------------------------------------------------------------------
    def _rpc(self, service, method, request_bytes, response_bytes, *args):
        result = yield from self.cluster.rpc.call(
            self.node, service, method, request_bytes, response_bytes, *args)
        return result

    def _control(self, service, method, *args):
        size = self.cluster.config.control_message_size
        result = yield from self._rpc(service, method, size, size, *args)
        return result

    def _descriptor(self, blob_id: str):
        if blob_id not in self._descriptors:
            descriptor = yield from self._control(
                self.deployment.version_manager, "get_blob", blob_id)
            self._descriptors[blob_id] = descriptor
        return self._descriptors[blob_id]

    # ------------------------------------------------------------------
    # namespace operations
    # ------------------------------------------------------------------
    def create_blob(self, blob_id: str, size: int,
                    chunk_size: Optional[int] = None, exist_ok: bool = False):
        """Create a BLOB of ``size`` addressable bytes (snapshot 0 = zeros)."""
        descriptor = BlobDescriptor.create(
            blob_id, size, chunk_size or self.deployment.chunk_size)
        created = yield from self._control(
            self.deployment.version_manager, "create_blob", descriptor, exist_ok)
        self._descriptors[blob_id] = created
        return created

    def open_blob(self, blob_id: str):
        """Fetch (and cache) the descriptor of an existing BLOB."""
        descriptor = yield from self._descriptor(blob_id)
        return descriptor

    def latest_version(self, blob_id: str):
        """Newest published snapshot version."""
        version = yield from self._control(
            self.deployment.version_manager, "latest", blob_id)
        return version

    def wait_published(self, blob_id: str, version: int):
        """Block until ``version`` is readable; returns the latest version."""
        latest = yield from self._control(
            self.deployment.version_manager, "wait_published", blob_id, version)
        return latest

    # ------------------------------------------------------------------
    # the classic (contiguous) BlobSeer interface
    # ------------------------------------------------------------------
    def write(self, blob_id: str, offset: int, data: bytes):
        """Contiguous write; returns a :class:`WriteReceipt` with the new version."""
        receipt = yield from self._vectored_write(
            blob_id, IOVector.contiguous_write(offset, data))
        return receipt

    def read(self, blob_id: str, offset: int, size: int,
             version: Optional[int] = None):
        """Contiguous read of a published snapshot (default: latest)."""
        pieces = yield from self._vectored_read(
            blob_id, IOVector.contiguous_read(offset, size), version)
        return pieces[0]

    # ------------------------------------------------------------------
    # vectored machinery (exposed publicly by repro.vstore.VectoredClient)
    # ------------------------------------------------------------------
    def _vectored_write(self, blob_id: str, vector: IOVector):
        """Write a whole vector as one snapshot (the paper's atomic unit)."""
        if not vector.is_write or len(vector) == 0:
            raise StorageError("a vectored write needs at least one payload request")
        started_at = self.cluster.sim.now
        blob = yield from self._descriptor(blob_id)

        # 1. chunk-aligned decomposition
        pieces = split_vector_into_pieces(blob, vector)

        # 2. placement (control-plane RPC to the provider manager)
        sizes = [piece.length for piece in pieces]
        providers = yield from self._control(
            self.deployment.provider_manager, "allocate", sizes)

        # 3. fully parallel, uncoordinated chunk uploads — one batched RPC per
        #    destination provider (the BlobSeer client library groups the
        #    chunks of a write the same way)
        per_provider: Dict[str, list] = {}
        for piece, provider_id in zip(pieces, providers):
            piece.chunk = self._chunk_keys.next_key()
            piece.provider_id = provider_id
            per_provider.setdefault(provider_id, []).append(piece)
        upload_processes = []
        for provider_id, provider_pieces in sorted(per_provider.items()):
            service = self.deployment.data_provider(provider_id)
            payload = [(piece.chunk, piece.data) for piece in provider_pieces]
            payload_bytes = sum(piece.length for piece in provider_pieces)
            upload_processes.append(self.cluster.sim.process(
                self._rpc(service, "put_chunks", payload_bytes,
                          self.cluster.config.control_message_size, payload),
                name=f"{self.name}:put:{provider_id}"))
        if upload_processes:
            yield self.cluster.sim.all_of(upload_processes)

        # 4. version ticket
        version, base_version = yield from self._control(
            self.deployment.version_manager, "assign_ticket", blob_id)

        # 5. copy-on-write metadata, batched per metadata shard
        leaf_segments = build_leaf_segments(blob, pieces)
        nodes = build_write_metadata(blob, version, base_version, leaf_segments)
        by_shard: Dict[int, list] = {}
        shard_count = len(self.deployment.metadata_providers)
        for node in nodes:
            index = PartitionedMetadataStore.partition_index(
                node.key.blob_id, node.key.offset, node.key.size, shard_count)
            by_shard.setdefault(index, []).append(node)
        node_size = self.cluster.config.metadata_node_size
        for index, shard_nodes in sorted(by_shard.items()):
            service = self.deployment.metadata_providers[index]
            yield from self._rpc(service, "put_nodes",
                                 len(shard_nodes) * node_size,
                                 self.cluster.config.control_message_size,
                                 shard_nodes)

        # 6. completion -> in-order publication at the version manager
        yield from self._control(
            self.deployment.version_manager, "complete", blob_id, version)

        self.bytes_written += vector.total_bytes()
        self.writes += 1
        return WriteReceipt(
            blob_id=blob_id,
            version=version,
            bytes_written=vector.total_bytes(),
            chunks=len(pieces),
            metadata_nodes=len(nodes),
            started_at=started_at,
            finished_at=self.cluster.sim.now,
        )

    def _vectored_read(self, blob_id: str, vector: IOVector,
                       version: Optional[int] = None):
        """Read the vector's ranges from one published snapshot."""
        blob = yield from self._descriptor(blob_id)
        if version is None:
            version = yield from self.latest_version(blob_id)
        elif not self.deployment.version_manager.manager.is_published(blob_id, version):
            raise VersionNotFound(
                f"snapshot {version} of {blob_id!r} is not published")

        regions = vector.region_list()
        plan = yield from self._resolve_metadata(blob, version, regions)

        # parallel chunk-range fetches — one batched RPC per data provider
        fetched: List[Tuple[int, int, bytes]] = []
        per_provider: Dict[str, list] = {}
        for extent in plan.extents:
            if extent.is_zero:
                fetched.append((extent.offset, extent.length, b"\x00" * extent.length))
            else:
                per_provider.setdefault(extent.provider_id, []).append(extent)

        def fetch_from(provider_id, extents):
            service = self.deployment.data_provider(provider_id)
            requests = [(extent.chunk, extent.chunk_offset, extent.length)
                        for extent in extents]
            total = sum(extent.length for extent in extents)
            pieces = yield from self._rpc(
                service, "get_chunk_ranges",
                self.cluster.config.control_message_size, total, requests)
            for extent, data in zip(extents, pieces):
                fetched.append((extent.offset, extent.length, data))

        fetch_processes = [
            self.cluster.sim.process(fetch_from(provider_id, extents),
                                     name=f"{self.name}:get:{provider_id}")
            for provider_id, extents in sorted(per_provider.items())
        ]
        if fetch_processes:
            yield self.cluster.sim.all_of(fetch_processes)

        results = self._assemble(vector, fetched)
        total = vector.total_bytes()
        self.bytes_read += total
        self.reads += 1
        return results

    # ------------------------------------------------------------------
    def _resolve_metadata(self, blob: BlobDescriptor, version: int, regions):
        """Resolve a read's segment-tree traversal against the metadata shards.

        The traversal advances one tree level at a time.  On the optimized
        path every level's cache misses are grouped by metadata shard and
        fetched with one batched ``get_nodes`` RPC per shard, issued in
        parallel — O(levels × shards) round-trips.  With
        ``metadata_batching=False`` each node costs its own ``get_node`` RPC
        (the pre-optimization baseline the perf suite measures against).
        Cache hits skip the wire entirely.
        """
        planner = ReadPlanner(blob, version, regions, cache=self.metadata_cache)
        config = self.cluster.config
        node_size = config.metadata_node_size
        request_size = config.metadata_request_size
        while not planner.done:
            requests = planner.pending()
            results: Dict[NodeRequest, object] = {}
            if requests and self.metadata_batching:
                by_shard = self.deployment.metadata_store.group_by_shard(
                    blob.blob_id, requests)

                def fetch_shard(index, shard_requests):
                    service = self.deployment.metadata_providers[index]
                    nodes = yield from self._rpc(
                        service, "get_nodes",
                        len(shard_requests) * request_size,
                        len(shard_requests) * node_size,
                        blob.blob_id, shard_requests)
                    for request, node in zip(shard_requests, nodes):
                        results[request] = node

                shard_processes = [
                    self.cluster.sim.process(fetch_shard(index, shard_requests),
                                             name=f"{self.name}:meta:{index}")
                    for index, shard_requests in sorted(by_shard.items())
                ]
                yield self.cluster.sim.all_of(shard_processes)
                planner.metadata_rpcs += len(by_shard)
            elif requests:
                shard_count = len(self.deployment.metadata_providers)
                for request in requests:
                    offset, size, hint = request
                    index = PartitionedMetadataStore.partition_index(
                        blob.blob_id, offset, size, shard_count)
                    service = self.deployment.metadata_providers[index]
                    node = yield from self._rpc(
                        service, "get_node", request_size, node_size,
                        blob.blob_id, offset, size, hint)
                    results[request] = node
                    planner.metadata_rpcs += 1
            planner.advance(results)
        plan = planner.plan()
        self.metadata_read_rpcs += plan.metadata_rpcs
        self.metadata_nodes_fetched += plan.nodes_fetched
        return plan

    @staticmethod
    def _assemble(vector: IOVector, fetched: List[Tuple[int, int, bytes]]) -> List[bytes]:
        """Scatter fetched extents back into one buffer per vector request."""
        results: List[bytes] = []
        for request in vector:
            buffer = bytearray(request.size)
            req_region = Region(request.offset, request.size)
            for offset, length, data in fetched:
                overlap = req_region.intersect(Region(offset, length))
                if overlap.empty:
                    continue
                src_start = overlap.offset - offset
                dst_start = overlap.offset - request.offset
                buffer[dst_start:dst_start + overlap.size] = \
                    data[src_start:src_start + overlap.size]
            results.append(bytes(buffer))
        return results
