"""The BlobSeer client library: write and read protocols.

A client runs inside a simulated process (an MPI rank, in the paper's
setting) on a compute node.  Its methods are *generator methods*: they yield
simulation events while data moves over the network and through disks, and
finally return their result.

Write protocol (one vectored write = one snapshot):

1. split the payload into chunk-aligned pieces;
2. ask the provider manager where to place each piece (one small RPC);
3. upload all pieces to their data providers **in parallel and with no
   coordination with other writers** — this is the heavy, fully parallel part;
4. obtain a version ticket from the version manager (small RPC, overlapped
   with step 3 on the default pipelined path);
5. build the copy-on-write metadata nodes for the new snapshot and store them
   on the metadata providers (batched per shard, shipped in parallel);
6. report completion; the version manager publishes snapshots in ticket
   order.

The commit machinery lives in :mod:`repro.blobseer.writepath`: the
:class:`~repro.blobseer.writepath.engine.PipelinedCommitEngine` executes
steps 2-6 (with or without overlap), and a
:class:`~repro.blobseer.writepath.coalescer.WriteCoalescer` can queue several
vectored writes and commit them as *one* merged snapshot batch — one
``allocate``, one ticket, one metadata build — behind an explicit
flush/barrier.

Read protocol: resolve the requested ranges against the snapshot's segment
tree (shadowed subtrees are followed to older versions), then fetch the
resolved chunk extents from the data providers in parallel.

The stock BlobSeer API exposes only *contiguous* :meth:`BlobClient.write` /
:meth:`BlobClient.read`; the non-contiguous extension of the paper is the
:class:`repro.vstore.client.VectoredClient` subclass, which reuses the
internal vectored machinery defined here.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.blobseer.blob import BlobDescriptor
from repro.blobseer.chunk import ChunkKeyFactory
from repro.blobseer.metadata.cache import MetadataNodeCache
from repro.blobseer.metadata.coopcache import PEER_MISS
from repro.blobseer.metadata.segment_tree import NodeRequest, ReadPlanner
from repro.blobseer.metadata.sharedcache import FETCH_FAILED
from repro.blobseer.metadata.store import PartitionedMetadataStore
from repro.blobseer.writepath.batch import WriteReceipt
from repro.blobseer.writepath.engine import PipelinedCommitEngine
from repro.core.listio import IOVector
from repro.core.regions import Region, RegionList
from repro.errors import StorageError, VersionNotFound

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.blobseer.deployment import BlobSeerDeployment
    from repro.cluster.node import Node

__all__ = ["BlobClient", "WriteReceipt"]

#: sentinel distinguishing "capacity not given" (fall back to the cluster
#: config) from an explicit ``None`` (force an unbounded cache)
_UNSET_CAPACITY = object()

#: sentinel for boolean options that fall back to the cluster config
_UNSET = object()


class BlobClient:
    """Client-side access to a :class:`~repro.blobseer.deployment.BlobSeerDeployment`.

    The metadata read path is optimized by default: an immutable-node cache
    (:class:`~repro.blobseer.metadata.cache.MetadataNodeCache`) answers
    repeated lookups locally, and the remaining lookups of each tree level
    are shipped as one batched ``get_nodes`` RPC per metadata shard.  Both
    optimizations can be switched off (``enable_metadata_cache=False`` /
    ``metadata_batching=False``) to measure the one-RPC-per-node baseline.

    The write path is symmetric: commits route through a
    :class:`~repro.blobseer.writepath.engine.PipelinedCommitEngine` that
    overlaps the version-ticket RPC with the chunk uploads, ships the
    per-shard ``put_nodes`` RPCs in parallel, and write-through-populates the
    metadata cache with the nodes it just published.  ``write_pipelining=
    False`` restores the serialized pre-subsystem write path and
    ``write_through_cache=False`` disables the cache priming, again for
    baseline measurements.  ``metadata_cache_capacity`` bounds the node
    cache (LRU); when not given it falls back to the cluster-wide
    ``ClusterConfig.metadata_cache_capacity``, and an explicit ``None``
    forces an unbounded cache even against a bounded cluster default.
    """

    #: queued-write coalescer; ``None`` on the stock client (the vectored
    #: subclass attaches one), checked by ``_vectored_write`` so immediate
    #: commits never overtake writes queued earlier in program order
    coalescer = None

    def __init__(self, deployment: "BlobSeerDeployment", node: "Node",
                 name: Optional[str] = None, *,
                 metadata_cache: Optional[MetadataNodeCache] = None,
                 enable_metadata_cache: bool = True,
                 metadata_batching: bool = True,
                 metadata_cache_capacity: object = _UNSET_CAPACITY,
                 shared_metadata_cache: object = _UNSET,
                 metadata_prefetch: object = _UNSET,
                 cooperative_cache: object = _UNSET,
                 fetch_coalescing: object = _UNSET,
                 write_pipelining: bool = True,
                 write_through_cache: bool = True):
        self.deployment = deployment
        self.cluster = deployment.cluster
        self.node = node
        self.name = name or f"client:{node.name}"
        self._chunk_keys = ChunkKeyFactory(self.name)
        self._descriptors: Dict[str, BlobDescriptor] = {}
        if metadata_cache_capacity is _UNSET_CAPACITY:
            metadata_cache_capacity = self.cluster.config.metadata_cache_capacity
        if metadata_cache is not None:
            self.metadata_cache: Optional[MetadataNodeCache] = metadata_cache
        elif enable_metadata_cache:
            self.metadata_cache = MetadataNodeCache(capacity=metadata_cache_capacity)
        else:
            self.metadata_cache = None
        self.metadata_batching = metadata_batching
        if shared_metadata_cache is _UNSET:
            shared_metadata_cache = self.cluster.config.shared_metadata_cache
        if metadata_prefetch is _UNSET:
            metadata_prefetch = self.cluster.config.metadata_prefetch
        #: the node-local shared cache tier this client attaches to (one
        #: service per compute node, discovered through the deployment;
        #: ``None`` keeps the pre-subsystem private-cache-only behaviour)
        if shared_metadata_cache:
            self.shared_cache = deployment.node_cache(node)
            self.shared_cache.attach(self.name)
        else:
            self.shared_cache = None
        #: speculative child prefetch: a frontier ``get_nodes`` also returns
        #: the children of each resolved inner node (and the base version of
        #: partially-covered leaves) that the shard can answer
        #: authoritatively, shaving whole levels of round-trips.  Prefetch
        #: rides on the *batched* fetch RPC, so it is normalized off when
        #: ``metadata_batching=False`` (the one-RPC-per-node baseline) —
        #: the resolved flag stays introspectable instead of silently inert
        self.metadata_prefetch = bool(metadata_prefetch) and metadata_batching
        if cooperative_cache is _UNSET:
            cooperative_cache = self.cluster.config.cooperative_cache
        #: cross-node cooperative tier: on a shared-tier miss, probe the
        #: responsible peer node's pool over a real RPC before falling back
        #: to the authoritative shards (:mod:`repro.blobseer.metadata.
        #: coopcache`).  Effective only with a shared tier to route through
        #: and batched fetches to fan the probes out on; enabling it
        #: enrolls this compute node in the deployment's coop directory
        self.cooperative_cache = (bool(cooperative_cache)
                                  and self.shared_cache is not None
                                  and metadata_batching)
        self.coop_peer = (deployment.coop_peer(node)
                          if self.cooperative_cache else None)
        if fetch_coalescing is _UNSET:
            fetch_coalescing = self.cluster.config.fetch_coalescing
        if fetch_coalescing is None:
            # follow the cooperative knob: the coalescing timeline change
            # (waiters park instead of fetching) only engages alongside the
            # tier it was built for, so cooperative-off configurations stay
            # byte- and counter-identical to the pre-subsystem behaviour
            fetch_coalescing = self.cooperative_cache
        #: park simultaneous missers for one key on the leader's sim event
        #: (needs the shared tier's node-local in-flight table)
        self.fetch_coalescing = (bool(fetch_coalescing)
                                 and self.shared_cache is not None
                                 and metadata_batching)
        self.write_pipelining = write_pipelining
        self.write_through_cache = write_through_cache
        #: the commit engine every write of this client routes through
        self.writepath = PipelinedCommitEngine(self)
        #: newest snapshot version this client knows to be published, per
        #: BLOB (fed by completion/publication responses; lets barriers and
        #: read-after-write paths skip redundant wait round-trips)
        self.version_hints: Dict[str, int] = {}
        #: one-shot *read* hints: versions a default (``version=None``) read
        #: may use instead of asking the version manager for ``latest``.
        #: Only sources that just synchronized with publication plant one —
        #: the coalescer's barrier after publishing this client's own writes,
        #: and collective commits piggybacking the group watermark — so a
        #: hinted read is read-your-writes-fresh by construction.  Consumed
        #: on use and dropped at every barrier, so it can never mask another
        #: writer's later synced data.
        self._read_hints: Dict[str, int] = {}
        #: client-side counters (aggregated by the benchmark harness)
        self.bytes_written: int = 0
        self.bytes_read: int = 0
        self.writes: int = 0
        self.reads: int = 0
        #: logical vectored writes accepted (equals ``writes`` unless a
        #: coalescer merged several of them into one snapshot)
        self.logical_writes: int = 0
        #: metadata read-path counters (RPC round-trips and nodes used)
        self.metadata_read_rpcs: int = 0
        self.metadata_nodes_fetched: int = 0
        #: ``latest`` round-trips actually issued to the version manager
        self.latest_rpcs: int = 0
        #: metadata nodes absorbed from a collective read's shipped plan
        #: (cache entries that cost MPI exchange bytes instead of RPCs)
        self.plan_nodes_absorbed: int = 0
        #: write-path counters: control-plane round-trips (allocate, ticket,
        #: complete, publication waits), per-shard put_nodes round-trips and
        #: nodes self-inserted into the cache by write-through population
        self.write_control_rpcs: int = 0
        self.metadata_put_rpcs: int = 0
        self.cache_primed_nodes: int = 0
        #: ``latest`` round-trips elided because a read consumed a hint
        self.latest_rpcs_elided: int = 0
        #: shared-tier (node-local) lookups answered after a private miss
        self.shared_cache_hits: int = 0
        #: deduplicated lookups neither cache tier answered (fetched over
        #: RPCs); with the tier hit counters this partitions every
        #: traversal's lookups exactly — the invariant the placement
        #: property suite pins
        self.metadata_lookup_fetches: int = 0
        #: extra nodes received through speculative child prefetch
        self.metadata_prefetched_nodes: int = 0
        #: lookups a cooperative peer node answered (admitted through this
        #: node's own watermark gate); part of the lookup partition
        self.peer_cache_hits: int = 0
        #: peer answers refused by the receiving-side watermark gate (the
        #: lookup then fell back to the authoritative shards)
        self.peer_rejections: int = 0
        #: probed lookups the peer could not answer
        self.peer_probe_misses: int = 0
        #: cooperative probe RPCs issued (one per responsible peer per level)
        self.peer_probe_rpcs: int = 0
        #: upstream fetches avoided by parking on an in-flight co-tenant
        #: fetch for the same key
        self.coalesced_fetches: int = 0
        #: per-rank span context (``None`` unless the cluster traces) — the
        #: single attribute test every instrumented site guards on
        tracer = self.cluster.obs.tracer
        self.trace_ctx = (tracer.context(("rank", self.name),
                                         node=node.name)
                          if tracer.enabled else None)

    # ------------------------------------------------------------------
    # small helpers
    # ------------------------------------------------------------------
    def _rpc(self, service, method, request_bytes, response_bytes, *args,
             trace_parent=None):
        """Every RPC of this client funnels through here.

        When tracing, each call gets a detached span on the *serving
        shard's* lane (so Perfetto shows server-side occupancy), parented
        under ``trace_parent`` or the rank's current mainline span; the
        span id rides into the transport so the request/response link
        transfers attach to it.  Detached because RPCs fan out
        concurrently within a rank — they must never touch the mainline
        stack.
        """
        ctx = self.trace_ctx
        if ctx is None:
            result = yield from self.cluster.rpc.call(
                self.node, service, method, request_bytes, response_bytes,
                *args)
            return result
        span = ctx.begin_detached(
            f"rpc.{method}", cat="rpc", lane=("shard", service.node.name),
            parent=trace_parent if trace_parent is not None else ctx.current,
            service=service.name)
        try:
            result = yield from self.cluster.rpc.call(
                self.node, service, method, request_bytes, response_bytes,
                *args, _trace_parent=span.span_id)
        finally:
            ctx.end(span)
        return result

    def _rpc_batch(self, calls, name="rpc.batch"):
        """Concurrent RPC fan-out through :meth:`RpcTransport.call_batch`.

        When tracing, the whole batch gets one detached span whose id is
        threaded into every member call, so all the batch's request and
        response link transfers attach to the span the caller sees — the
        attribution the ``call_batch`` trace regression test pins.
        """
        ctx = self.trace_ctx
        if ctx is None:
            results = yield from self.cluster.rpc.call_batch(self.node, calls)
            return results
        span = ctx.begin_detached(name, cat="rpc", parent=ctx.current,
                                  calls=len(calls))
        try:
            results = yield from self.cluster.rpc.call_batch(
                self.node, calls, _trace_parent=span.span_id)
        finally:
            ctx.end(span)
        return results

    def _control(self, service, method, *args, trace_parent=None):
        size = self.cluster.config.control_message_size
        result = yield from self._rpc(service, method, size, size, *args,
                                      trace_parent=trace_parent)
        return result

    def _descriptor(self, blob_id: str):
        if blob_id not in self._descriptors:
            descriptor = yield from self._control(
                self.deployment.version_manager, "get_blob", blob_id)
            self._descriptors[blob_id] = descriptor
        return self._descriptors[blob_id]

    # ------------------------------------------------------------------
    # namespace operations
    # ------------------------------------------------------------------
    def create_blob(self, blob_id: str, size: int,
                    chunk_size: Optional[int] = None, exist_ok: bool = False):
        """Create a BLOB of ``size`` addressable bytes (snapshot 0 = zeros)."""
        descriptor = BlobDescriptor.create(
            blob_id, size, chunk_size or self.deployment.chunk_size)
        created = yield from self._control(
            self.deployment.version_manager, "create_blob", descriptor, exist_ok)
        self._descriptors[blob_id] = created
        return created

    def open_blob(self, blob_id: str):
        """Fetch (and cache) the descriptor of an existing BLOB."""
        descriptor = yield from self._descriptor(blob_id)
        return descriptor

    def latest_version(self, blob_id: str):
        """Newest published snapshot version."""
        self.latest_rpcs += 1
        version = yield from self._control(
            self.deployment.version_manager, "latest", blob_id)
        self.note_published(blob_id, version)
        return version

    def wait_published(self, blob_id: str, version: int):
        """Block until ``version`` is readable; returns the latest version."""
        self.write_control_rpcs += 1
        latest = yield from self._control(
            self.deployment.version_manager, "wait_published", blob_id, version)
        self.note_published(blob_id, latest)
        return latest

    def note_published(self, blob_id: str, version: int) -> None:
        """Record that ``version`` is known to be published (hint table).

        The observation is forwarded to the node-local shared cache: its
        admission gate opens for a version only once *some* co-located
        client saw it published.
        """
        if version > self.version_hints.get(blob_id, 0):
            self.version_hints[blob_id] = version
        if self.shared_cache is not None:
            self.shared_cache.note_published(blob_id, version)

    def detach(self) -> None:
        """Detach from the node-local shared cache (process teardown).

        Published entries this client contributed stay resident for the
        node's other tenants — that is safe precisely because the shared
        tier never admitted anything from an unpublished version.
        """
        if self.shared_cache is not None:
            self.shared_cache.detach(self.name)
            self.shared_cache = None

    def note_collective_commit(self, blob_id: str, version: int) -> None:
        """Absorb a collective write's published watermark.

        The aggregators of a collective write share the group's highest
        published version with every participating rank at no RPC cost (it
        rides on the closing exchange), so each rank's next default read can
        consume it instead of issuing a ``latest`` round-trip — and still
        observe everything the collective wrote.
        """
        self.note_published(blob_id, version)
        self.offer_read_hint(blob_id)

    def note_collective_read(self, blob_id: str, version: int) -> None:
        """Absorb a collective read's pinned snapshot version.

        Same contract as :meth:`note_collective_commit`: the group just
        synchronized on a published version (the pin every rank read from),
        so each rank may start its next default read there without asking
        the version manager — the one-shot hint the collective consumed in
        its opening phase is refreshed here, never silently lost.
        """
        self.note_collective_commit(blob_id, version)

    def absorb_plan_nodes(self, blob_id: str, entries) -> int:
        """Insert metadata nodes shipped by a collective read's resolver.

        ``entries`` are ``((offset, size, hint), node-or-None)`` pairs from a
        resolver's :class:`~repro.blobseer.metadata.segment_tree.ReadPlanner`
        trace — resolved lookups of a *published* snapshot, so they are
        permanently valid and inserting them is as safe as fetching them
        ourselves would have been.  Costs zero RPCs; returns how many entries
        were absorbed.
        """
        if self.metadata_cache is None and self.shared_cache is None:
            return 0
        for (offset, size, hint), node in entries:
            if self.metadata_cache is not None:
                self.metadata_cache.put(blob_id, offset, size, hint, node)
            if self.shared_cache is not None:
                # one collective warms the whole node: the plan resolves a
                # *published* pinned snapshot, so the watermark gate (fed by
                # the collective's own note_collective_read) admits it
                self.shared_cache.publish(blob_id, offset, size, hint, node)
        self.plan_nodes_absorbed += len(entries)
        return len(entries)

    def offer_read_hint(self, blob_id: str) -> None:
        """Let the next ``version=None`` read start from the known watermark.

        Only callers that *just* synchronized with publication may offer a
        hint (see ``_read_hints``); anything older must go through the
        version manager so other writers' synced data is never missed.
        """
        version = self.version_hints.get(blob_id, 0)
        if version > 0:
            self._read_hints[blob_id] = version

    def drop_read_hint(self, blob_id: str) -> None:
        """Invalidate a pending read hint (visibility fences must call this)."""
        self._read_hints.pop(blob_id, None)

    def has_unpublished_state(self, blob_id: str) -> bool:
        """Whether a read of ``blob_id`` could miss this client's own writes.

        True when the client holds write state publication has not caught up
        with: queued (uncommitted) writes, unjoined deferred completions, or
        a committed batch whose publication still lags the known watermark
        (an earlier ticket held by another writer delays it — the inline
        ``complete`` then returns a watermark below our own version).
        Read-your-writes paths — the driver's independent read fence and a
        collective read's phase 0 — must fence through the coalescer's
        barrier exactly when this is true.
        """
        if self.writepath.outstanding(blob_id):
            return True
        if self.coalescer is None:
            return False
        return bool(self.coalescer.pending_writes(blob_id)
                    or self.coalescer.last_committed_version(blob_id)
                    > self.version_hints.get(blob_id, 0))

    def hinted_blobs(self) -> List[str]:
        """BLOBs currently holding a pending one-shot read hint.

        Global fences iterate this in addition to their own commit targets:
        a hint may exist for a BLOB the fence's owner never committed to
        (e.g. planted by a collective commit on a non-aggregator rank).
        """
        return list(self._read_hints)

    def take_read_hint(self, blob_id: str) -> Optional[int]:
        """Consume the pending read hint, if any (one-shot).

        Resolved against the *current* publication watermark: the client may
        have observed a newer published version since the hint was planted
        (a deferred completion response, an explicit ``latest``/
        ``wait_published`` round-trip), and a default read must never return
        data older than a watermark this client already saw — monotonic
        reads within one client.  Every watermark source is a published
        version, so the resolved value is always safely readable.
        """
        hint = self._read_hints.pop(blob_id, None)
        if hint is None:
            return None
        return max(hint, self.version_hints.get(blob_id, 0))

    # ------------------------------------------------------------------
    # the classic (contiguous) BlobSeer interface
    # ------------------------------------------------------------------
    def write(self, blob_id: str, offset: int, data: bytes):
        """Contiguous write; returns a :class:`WriteReceipt` with the new version."""
        receipt = yield from self._vectored_write(
            blob_id, IOVector.contiguous_write(offset, data))
        return receipt

    def read(self, blob_id: str, offset: int, size: int,
             version: Optional[int] = None):
        """Contiguous read of a published snapshot (default: latest)."""
        pieces = yield from self._vectored_read(
            blob_id, IOVector.contiguous_read(offset, size), version)
        return pieces[0]

    # ------------------------------------------------------------------
    # vectored machinery (exposed publicly by repro.vstore.VectoredClient)
    # ------------------------------------------------------------------
    def _vectored_write(self, blob_id: str, vector: IOVector):
        """Write a whole vector as one snapshot (the paper's atomic unit).

        The commit protocol — placement, uncoordinated parallel uploads,
        version ticket, copy-on-write metadata, in-order publication — lives
        in :class:`~repro.blobseer.writepath.engine.PipelinedCommitEngine`;
        this entry point always commits immediately and blocks on the
        ``complete`` RPC (queued/deferred commits go through a
        :class:`~repro.blobseer.writepath.coalescer.WriteCoalescer`).

        Writes already queued for this BLOB are flushed first: they were
        issued earlier in program order, so they must take their ticket
        before this one does.
        """
        if self.coalescer is not None and self.coalescer.pending_writes(blob_id):
            yield from self.coalescer.flush(blob_id)
        receipt = yield from self.writepath.commit(blob_id, vector)
        return receipt

    def _vectored_read(self, blob_id: str, vector: IOVector,
                       version: Optional[int] = None, *,
                       trace: Optional[Dict] = None,
                       holes: Optional[List[Region]] = None):
        """Read the vector's ranges from one published snapshot.

        ``trace`` (optional) collects the metadata lookups the read resolved
        — the hook collective-read resolvers use to ship their traversal to
        peer ranks for cache warming.  ``holes`` (optional) collects the
        never-written ranges the plan zero-filled, so a collective resolver
        can ship them as compact descriptors instead of literal zero bytes.
        """
        blob = yield from self._descriptor(blob_id)
        if version is None:
            # a hint planted by this client's own barrier or a collective
            # commit names a published snapshot at least as new as anything
            # this client synchronized on — consuming it elides the
            # ``latest`` round-trip without weakening read-your-writes
            hint = self.take_read_hint(blob_id)
            if hint is not None:
                version = hint
                self.latest_rpcs_elided += 1
            else:
                version = yield from self.latest_version(blob_id)
        elif not self.deployment.version_manager.manager.is_published(blob_id, version):
            raise VersionNotFound(
                f"snapshot {version} of {blob_id!r} is not published")
        else:
            # the version was just validated as published: record the
            # observation so the shared tier's admission gate opens for the
            # nodes this traversal is about to resolve
            self.note_published(blob_id, version)

        regions = vector.region_list()
        plan = yield from self._resolve_metadata(blob, version, regions,
                                                 trace=trace)

        # parallel chunk-range fetches — one batched RPC per data provider
        fetched: List[Tuple[int, int, bytes]] = []
        per_provider: Dict[str, list] = {}
        for extent in plan.extents:
            if extent.is_zero:
                if holes is not None:
                    holes.append(Region(extent.offset, extent.length))
                fetched.append((extent.offset, extent.length, b"\x00" * extent.length))
            else:
                per_provider.setdefault(extent.provider_id, []).append(extent)

        def fetch_from(provider_id, extents):
            service = self.deployment.data_provider(provider_id)
            requests = [(extent.chunk, extent.chunk_offset, extent.length)
                        for extent in extents]
            total = sum(extent.length for extent in extents)
            pieces = yield from self._rpc(
                service, "get_chunk_ranges",
                self.cluster.config.control_message_size, total, requests)
            for extent, data in zip(extents, pieces):
                fetched.append((extent.offset, extent.length, data))

        if per_provider:
            yield self.cluster.sim.fanout(
                [fetch_from(provider_id, extents)
                 for provider_id, extents in sorted(per_provider.items())])

        results = self._assemble(vector, fetched)
        total = vector.total_bytes()
        self.bytes_read += total
        self.reads += 1
        return results

    # ------------------------------------------------------------------
    def _resolve_metadata(self, blob: BlobDescriptor, version: int, regions,
                          trace: Optional[Dict] = None):
        """Resolve a read's segment-tree traversal against the metadata shards.

        The traversal advances one tree level at a time.  On the optimized
        path every level's cache misses are grouped by metadata shard and
        fetched with one batched ``get_nodes`` RPC per shard, issued in
        parallel — O(levels × shards) round-trips.  With
        ``metadata_batching=False`` each node costs its own ``get_node`` RPC
        (the pre-optimization baseline the perf suite measures against).
        Cache hits skip the wire entirely.

        With ``fetch_coalescing`` each level's misses first fold into the
        node-local in-flight table (simultaneous missers share one fetch),
        and with ``cooperative_cache`` the fetches this client leads probe
        the responsible peer node's cache before falling back to the
        authoritative shards.
        """
        planner = ReadPlanner(blob, version, regions,
                              cache=self.metadata_cache,
                              shared=self.shared_cache, trace=trace)
        while not planner.done:
            requests = planner.pending()
            results: Dict[NodeRequest, object] = {}
            peer_answered: set = set()
            led: List[NodeRequest] = []
            parked: List[Tuple[NodeRequest, object]] = []
            if requests and self.fetch_coalescing:
                # split this level's misses into fetches this client will
                # lead and fetches already in flight on this node for the
                # same key — parked lookups share the leader's result and
                # never touch the wire
                for request in requests:
                    leader, _owner, event = self.shared_cache.coalesce(
                        self.cluster.sim, blob.blob_id, *request)
                    if leader:
                        led.append(request)
                    else:
                        self.coalesced_fetches += 1
                        self.shared_cache.stats.coalesced_fetches += 1
                        parked.append((request, event))
                fetchable = led
            else:
                fetchable = list(requests)
            try:
                if fetchable and self.cooperative_cache:
                    yield from self._probe_peers(blob, fetchable, results,
                                                 peer_answered)
                remaining = [request for request in fetchable
                             if request not in results]
                yield from self._fetch_authoritative(blob, planner, remaining,
                                                     results)
            except BaseException:
                # never leave this node's parked waiters hanging on a fetch
                # that died with this client
                for request in led:
                    self.shared_cache.coalesce_abort(blob.blob_id, *request)
                raise
            # resolve this client's leads before waiting on parked events:
            # the reverse order could park forever behind our own unresolved
            # leads
            for request in led:
                self.shared_cache.coalesce_resolve(blob.blob_id, *request,
                                                   results[request])
            for request, event in parked:
                ctx = self.trace_ctx
                park_span = None if ctx is None else ctx.begin(
                    "meta.park", cat="wait", blob=blob.blob_id,
                    key=list(request))
                try:
                    value = yield event
                finally:
                    if park_span is not None:
                        ctx.finish(park_span)
                if value is FETCH_FAILED:
                    raise StorageError(
                        f"coalesced metadata fetch {request} for blob "
                        f"{blob.blob_id!r} failed at its leader")
                results[request] = value
            planner.advance(results, peer_answered)
        plan = planner.plan()
        self.metadata_read_rpcs += plan.metadata_rpcs
        self.metadata_nodes_fetched += plan.nodes_fetched
        self.shared_cache_hits += plan.shared_hits
        self.peer_cache_hits += plan.peer_hits
        self.metadata_lookup_fetches += plan.requests_fetched
        return plan

    def _fetch_authoritative(self, blob: BlobDescriptor, planner, requests,
                             results) -> None:
        """Fetch one level's unresolved lookups from the metadata shards."""
        config = self.cluster.config
        node_size = config.metadata_node_size
        request_size = config.metadata_request_size
        if requests and self.metadata_batching:
            by_shard = self.deployment.metadata_store.group_by_shard(
                blob.blob_id, requests)

            def fetch_shard(index, shard_requests):
                service = self.deployment.metadata_providers[index]
                if self.metadata_prefetch:
                    # the shard also resolves the children it owns of
                    # every inner node it returns (and the base version
                    # of partially-covered leaves) — extra response
                    # bytes, priced from the actual result, for whole
                    # levels of saved round-trips
                    nodes, extras = yield from self._rpc(
                        service, "get_nodes",
                        len(shard_requests) * request_size,
                        lambda result: (len(result[0]) + len(result[1]))
                        * node_size,
                        blob.blob_id, shard_requests, True)
                    self._absorb_prefetched(blob.blob_id, extras)
                else:
                    nodes = yield from self._rpc(
                        service, "get_nodes",
                        len(shard_requests) * request_size,
                        len(shard_requests) * node_size,
                        blob.blob_id, shard_requests)
                for request, node in zip(shard_requests, nodes):
                    results[request] = node

            yield self.cluster.sim.fanout(
                [fetch_shard(index, shard_requests)
                 for index, shard_requests in sorted(by_shard.items())])
            planner.metadata_rpcs += len(by_shard)
        elif requests:
            shard_count = len(self.deployment.metadata_providers)
            for request in requests:
                offset, size, hint = request
                index = PartitionedMetadataStore.partition_index(
                    blob.blob_id, offset, size, shard_count)
                service = self.deployment.metadata_providers[index]
                node = yield from self._rpc(
                    service, "get_node", request_size, node_size,
                    blob.blob_id, offset, size, hint)
                results[request] = node
                planner.metadata_rpcs += 1

    def _probe_peers(self, blob: BlobDescriptor, requests, results,
                     peer_answered) -> None:
        """Ask responsible peers about this level's misses before the shards.

        Routes every pending lookup through the cooperative directory
        (custody hash, provider fallback when this node is custodian) and
        fans one ``probe`` RPC out per target peer.  Answers pass through
        *this* node's watermark gate before being trusted: a peer whose
        claimed version this client has never observed published is
        rejected (``peer_rejections``) and the lookup falls back to the
        authoritative shard.
        """
        directory = self.deployment.coop_directory
        groups: Dict[str, tuple] = {}
        for request in requests:
            offset, size, _hint = request
            target = directory.route(self.node.name, blob.blob_id, offset,
                                     size)
            if target is None:
                continue
            groups.setdefault(target.node.name, (target, []))[1].append(
                request)
        if not groups:
            return
        config = self.cluster.config
        node_size = config.metadata_node_size
        request_size = config.metadata_request_size
        control_size = config.control_message_size

        def response_size(answer):
            # a dead peer (None) or an all-miss answer still costs a
            # control message; hits ship one node each
            if not answer:
                return control_size
            hits = sum(1 for entry in answer if entry is not PEER_MISS)
            return max(hits * node_size, control_size)

        specs = []
        ordered = []
        watermark = self.shared_cache.watermark(blob.blob_id)
        for _name, (target, probe_requests) in sorted(groups.items()):
            specs.append((target, "probe",
                          len(probe_requests) * request_size, response_size,
                          (blob.blob_id, list(probe_requests), watermark)))
            ordered.append(probe_requests)
        self.peer_probe_rpcs += len(specs)
        answers = yield from self._rpc_batch(specs, name="rpc.coop_probe")
        for probe_requests, answer in zip(ordered, answers):
            if answer is None:
                # dead peer: treat the whole probe as a miss
                self.peer_probe_misses += len(probe_requests)
                continue
            for request, entry in zip(probe_requests, answer):
                if entry is PEER_MISS:
                    self.peer_probe_misses += 1
                    continue
                _offset, _size, hint = request
                if hint > self.shared_cache.watermark(blob.blob_id):
                    # admission gate on the *receiving* side: never trust
                    # a version this node has not itself observed published
                    self.peer_rejections += 1
                    continue
                results[request] = entry
                peer_answered.add(request)

    def _absorb_prefetched(self, blob_id: str, extras) -> None:
        """Insert speculatively prefetched lookups into both cache tiers.

        ``extras`` are ``((offset, size, hint), node-or-None)`` pairs the
        shard resolved *authoritatively* (it owns their range keys), so
        they are exactly as trustworthy as requested fetches.  The shared
        tier applies its usual watermark gate.
        """
        for (offset, size, hint), node in extras:
            if self.metadata_cache is not None:
                self.metadata_cache.put(blob_id, offset, size, hint, node)
            if self.shared_cache is not None:
                self.shared_cache.publish(blob_id, offset, size, hint, node)
        self.metadata_prefetched_nodes += len(extras)

    @staticmethod
    def _assemble(vector: IOVector, fetched: List[Tuple[int, int, bytes]]) -> List[bytes]:
        """Scatter fetched extents back into one buffer per vector request.

        Fetched extents never overlap each other (the read plan partitions
        the wanted ranges), so after sorting them by offset each request only
        needs the slice of extents its range intersects — found with a bisect
        instead of scanning the full extent list per request, which turned a
        whole-file verify read into an O(requests x extents) quadratic walk.
        """
        extents = sorted(fetched, key=lambda item: item[0])
        ends = [offset + length for offset, length, _data in extents]
        results: List[bytes] = []
        for request in vector:
            buffer = bytearray(request.size)
            req_start = request.offset
            req_end = req_start + request.size
            index = bisect_right(ends, req_start)
            while index < len(extents):
                offset, length, data = extents[index]
                if offset >= req_end:
                    break
                lo = max(req_start, offset)
                hi = min(req_end, offset + length)
                if hi > lo:
                    src_start = lo - offset
                    buffer[lo - req_start:hi - req_start] = \
                        data[src_start:src_start + (hi - lo)]
                index += 1
            results.append(bytes(buffer))
        return results
