"""Deployment of a BlobSeer instance on a simulated cluster.

A deployment creates the nodes and services of one BlobSeer instance:

* one version manager node,
* one provider manager node,
* ``num_metadata_providers`` metadata provider nodes (hash-partitioned),
* ``num_providers`` data provider nodes (each with a disk).

Clients (MPI ranks) live on *separate* compute nodes and are created with
:meth:`BlobSeerDeployment.client`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, TYPE_CHECKING

from repro.blobseer.client import BlobClient
from repro.blobseer.metadata.coopcache import CoopDirectory, PeerCacheService
from repro.blobseer.metadata.provider import SimMetadataProvider
from repro.blobseer.metadata.sharedcache import NodeCacheService
from repro.blobseer.metadata.store import MetadataStore, PartitionedMetadataStore
from repro.blobseer.provider import DataProviderStore, SimDataProvider
from repro.blobseer.provider_manager import (
    ProviderManager,
    SimProviderManager,
    make_strategy,
)
from repro.blobseer.version_manager import SimVersionManager, VersionManager
from repro.errors import ProviderUnavailable, StorageError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.cluster import Cluster
    from repro.cluster.node import Node


class BlobSeerDeployment:
    """All services of one BlobSeer instance, placed on cluster nodes."""

    def __init__(self, cluster: "Cluster", num_providers: int = 4,
                 num_metadata_providers: int = 1, chunk_size: int = 64 * 1024,
                 allocation: str = "round_robin",
                 publish_cost: float = 0.0,
                 node_prefix: str = "bs",
                 persist_to_disk: Optional[bool] = None):
        if num_providers <= 0:
            raise ProviderUnavailable("a deployment needs at least one data provider")
        if num_metadata_providers <= 0:
            raise ProviderUnavailable("a deployment needs at least one metadata provider")

        self.cluster = cluster
        self.chunk_size = chunk_size
        persist = (cluster.config.persist_to_disk
                   if persist_to_disk is None else persist_to_disk)

        # version manager
        vm_node = cluster.add_node(f"{node_prefix}-vmgr", role="version-manager")
        self.version_manager = SimVersionManager(
            vm_node, VersionManager(), publish_cost=publish_cost)

        # provider manager
        pm_node = cluster.add_node(f"{node_prefix}-pmgr", role="provider-manager")
        self.provider_manager = SimProviderManager(
            pm_node, ProviderManager(strategy=make_strategy(allocation)))

        # metadata providers (hash partitioned shards); each shard knows its
        # own index so it can answer speculative child prefetches only for
        # range keys it authoritatively owns
        self.metadata_providers: List[SimMetadataProvider] = []
        for index in range(num_metadata_providers):
            node = cluster.add_node(f"{node_prefix}-meta{index}", role="metadata")
            self.metadata_providers.append(
                SimMetadataProvider(node, MetadataStore(store_id=node.name),
                                    shard_index=index,
                                    shard_count=num_metadata_providers))
        self.metadata_store = PartitionedMetadataStore(
            [provider.store for provider in self.metadata_providers])

        #: node-local shared metadata caches, one per compute node name,
        #: created on first attachment (see :meth:`node_cache`)
        self.node_caches: Dict[str, "NodeCacheService"] = {}

        #: the cooperative cross-node tier's membership directory, created
        #: when the first cooperative client attaches (see :meth:`coop_peer`)
        self.coop_directory: Optional[CoopDirectory] = None

        # data providers
        self.data_providers: Dict[str, SimDataProvider] = {}
        for index in range(num_providers):
            node = cluster.add_node(f"{node_prefix}-data{index}", role="data-provider",
                                    with_disk=persist)
            service = SimDataProvider(node, DataProviderStore(node.name),
                                      persist_to_disk=persist)
            self.data_providers[service.provider_id] = service
            self.provider_manager.manager.register(service.provider_id)

        self._client_counter = 0

    # ------------------------------------------------------------------
    def node_cache(self, node: "Node") -> "NodeCacheService":
        """The shared metadata cache service of one compute node.

        Created on first use with the cluster config's capacity/policy
        knobs; every client placed on ``node`` that enables
        ``shared_metadata_cache`` attaches to the same instance, which is
        what lets co-located ranks amortize metadata fetches.
        """
        if node.name not in self.node_caches:
            config = self.cluster.config
            self.node_caches[node.name] = NodeCacheService(
                node.name,
                capacity=config.shared_cache_capacity,
                policy=config.shared_cache_policy)
        return self.node_caches[node.name]

    def coop_peer(self, node: "Node") -> "PeerCacheService":
        """Enroll ``node`` in the cooperative cross-node tier (idempotent).

        Creates the :class:`~repro.blobseer.metadata.coopcache.CoopDirectory`
        on first use with the cluster config's ``coop_provider_fraction``
        and exposes the node's shared pool to its peers.
        """
        if self.coop_directory is None:
            self.coop_directory = CoopDirectory(
                self,
                provider_fraction=self.cluster.config.coop_provider_fraction)
        return self.coop_directory.register(node, self.node_cache(node))

    def coop_stats(self) -> dict:
        """Aggregate cooperative-tier counters (zeros when never enabled)."""
        if self.coop_directory is None:
            return {"served_hits": 0, "served_misses": 0, "read_throughs": 0,
                    "unavailable_probes": 0, "services": 0, "probe_rpcs": 0}
        return self.coop_directory.stats()

    def shared_cache_stats(self) -> dict:
        """Aggregate shared-tier counters over every node's service."""
        totals = {"hits": 0, "misses": 0, "insertions": 0, "evictions": 0,
                  "unpublished_rejections": 0, "capacity_rejections": 0,
                  "coalesced_fetches": 0}
        for service in self.node_caches.values():
            attached = service.attached
            if len(set(attached)) != len(attached):
                raise StorageError(
                    f"shared cache on {service.node_name} holds duplicate "
                    f"attachments {attached} — attach() is idempotent, so a "
                    "duplicate means bookkeeping corrupted")
            snapshot = service.stats.snapshot()
            for key in totals:
                totals[key] += snapshot[key]
        totals["services"] = len(self.node_caches)
        totals["entries"] = sum(len(service)
                                for service in self.node_caches.values())
        totals["attached_clients"] = sum(len(service.attached)
                                         for service in self.node_caches.values())
        return totals

    def data_provider(self, provider_id: str) -> SimDataProvider:
        """Look up a data provider service by id."""
        try:
            return self.data_providers[provider_id]
        except KeyError:
            raise ProviderUnavailable(f"unknown data provider {provider_id!r}") from None

    def client(self, node: "Node", name: Optional[str] = None,
               **client_options) -> BlobClient:
        """Create a client bound to ``node`` (typically an MPI rank's node).

        ``client_options`` forward to :class:`BlobClient` (e.g.
        ``enable_metadata_cache`` / ``metadata_batching`` for the metadata
        read-path benchmarks, ``write_pipelining`` / ``write_through_cache``
        for the write-path ones).
        """
        self._client_counter += 1
        return BlobClient(self, node, name or f"blobclient{self._client_counter}",
                          **client_options)

    # ------------------------------------------------------------------
    def fail_provider(self, provider_id: str) -> None:
        """Failure injection: crash a data provider and deregister it."""
        self.data_provider(provider_id).store.fail()
        self.provider_manager.manager.mark_failed(provider_id)

    def recover_provider(self, provider_id: str) -> None:
        """Failure injection: bring a crashed data provider back."""
        self.data_provider(provider_id).store.recover()
        self.provider_manager.manager.mark_recovered(provider_id)

    def metrics(self, registry=None):
        """Canonical registry view of the storage-side statistics.

        Returns a :class:`~repro.obs.registry.MetricsRegistry` (the one
        passed in, or a fresh one) populated by
        :func:`repro.obs.views.collect_deployment` — the replacement for
        keying on the ambiguous legacy names of :meth:`stats`.
        """
        from repro.obs.registry import MetricsRegistry
        from repro.obs.views import collect_deployment

        registry = registry if registry is not None else MetricsRegistry()
        collect_deployment(registry, self)
        return registry

    def stats(self) -> dict:
        """Aggregate storage-side statistics for benchmark reports.

        .. deprecated:: kept for existing artifact consumers.  The
           ``metadata_read_rpcs`` / ``metadata_put_rpcs`` keys here count
           **server-side** handler invocations, although clients expose
           same-named fields counting client-side issue events — use
           :meth:`metrics` (``metadata.server.*`` vs ``metadata.client.*``
           names, see :data:`repro.obs.views.DEPRECATED_STAT_ALIASES`)
           for the unambiguous view.
        """
        stores = [service.store for service in self.data_providers.values()]
        get_node_rpcs = sum(provider.calls.get("get_node", 0)
                            for provider in self.metadata_providers)
        get_nodes_rpcs = sum(provider.calls.get("get_nodes", 0)
                             for provider in self.metadata_providers)
        put_nodes_rpcs = sum(provider.calls.get("put_nodes", 0)
                             for provider in self.metadata_providers)
        prefetched = sum(provider.nodes_prefetched
                         for provider in self.metadata_providers)
        return {
            "providers": len(stores),
            "chunks": sum(store.chunk_count() for store in stores),
            "stored_bytes": sum(store.stored_bytes() for store in stores),
            "metadata_nodes": self.metadata_store.node_count(),
            "metadata_read_rpcs": get_node_rpcs + get_nodes_rpcs,
            "metadata_batched_rpcs": get_nodes_rpcs,
            "metadata_prefetched_nodes": prefetched,
            "metadata_put_rpcs": put_nodes_rpcs,
            "snapshots_published": self.version_manager.manager.snapshots_published,
            "tickets_assigned": self.version_manager.manager.tickets_assigned,
            "load_imbalance": self.provider_manager.manager.load_imbalance(),
            "shared_cache": self.shared_cache_stats(),
            "coop_cache": self.coop_stats(),
        }
