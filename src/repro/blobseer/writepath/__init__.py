"""The write-pipeline subsystem: coalesced snapshots and overlapped commits.

The control-plane cost of a vectored write in stock BlobSeer is a fixed
ladder of blocking round-trips — ``allocate`` → uploads → ``assign_ticket``
→ per-shard ``put_nodes`` → ``complete`` — paid once *per write*.  This
package removes that ladder from the client's critical path the same way the
metadata read path removed per-node ``get_node`` round-trips:

* :class:`~repro.blobseer.writepath.coalescer.WriteCoalescer` queues a
  client's pending vectored writes and merges them into one snapshot batch:
  one ``allocate``, one version ticket, one merged copy-on-write metadata
  build.  Queue order is preserved, so a coalesced batch equals the serial
  application of its writes — the MPI-atomic unit simply grows from one
  vector to one batch.  An explicit :meth:`~WriteCoalescer.barrier` restores
  write-visible semantics wherever the application needs them.
* :class:`~repro.blobseer.writepath.engine.PipelinedCommitEngine` executes a
  commit with overlap: the version ticket is acquired *while* chunk uploads
  are in flight, the per-shard ``put_nodes`` RPCs go out in parallel, and
  back-to-back batches defer their ``complete`` RPC off the critical path
  (publication still happens strictly in ticket order at the version
  manager).
* Write-through cache population: a writer already holds every metadata node
  it publishes, so the engine inserts them into the client's
  :class:`~repro.blobseer.metadata.cache.MetadataNodeCache` and records the
  published version in the client's version-hint table — read-after-write is
  warm from the very first read.

Everything stays switchable (``write_pipelining=False`` reproduces the
serialized pre-subsystem write path) so the ``BENCH_writepath.json``
microbenchmarks can measure the old and the new paths side by side.
"""

from repro.blobseer.writepath.batch import (
    StagedWrite,
    WriteBatch,
    WriteReceipt,
    merge_write_vectors,
)
from repro.blobseer.writepath.coalescer import CoalescerStats, WriteCoalescer
from repro.blobseer.writepath.engine import PipelinedCommitEngine

__all__ = [
    "StagedWrite",
    "WriteBatch",
    "WriteReceipt",
    "merge_write_vectors",
    "CoalescerStats",
    "WriteCoalescer",
    "PipelinedCommitEngine",
]
