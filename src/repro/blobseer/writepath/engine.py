"""The pipelined commit engine: one write batch → one published snapshot.

The engine owns the commit protocol of a :class:`~repro.blobseer.client.
BlobClient`.  In pipelined mode (the default) it overlaps everything the
protocol allows:

* the version ticket is requested *concurrently* with the chunk uploads —
  the ticket round-trip disappears behind the (much heavier) data transfers;
* the per-shard ``put_nodes`` RPCs are issued in parallel, mirroring the
  batched read path, instead of one blocking round-trip per shard;
* a batch commit may *defer* its ``complete`` RPC: the call is launched as a
  background process and the next batch starts immediately, so back-to-back
  writes pipeline ``assign_ticket``/``complete`` across snapshots.
  :meth:`PipelinedCommitEngine.drain` joins the in-flight completions (the
  coalescer's barrier does this before waiting for publication).

Correctness does not move: metadata nodes are always stored *before*
``complete`` is issued, and the version manager still publishes strictly in
ticket order, so deferring a completion can delay publication but never
reorder it.

With ``write_pipelining=False`` on the client the engine reproduces the
pre-subsystem write path exactly — sequential control round-trips and a
sequential per-shard ``put_nodes`` loop — which is the baseline the
``BENCH_writepath.json`` suite measures against.

Write-through cache population rides on the commit: the writer just built
every node of the new snapshot, so inserting them into its own
:class:`~repro.blobseer.metadata.cache.MetadataNodeCache` costs no RPC and
makes its read-after-write traversals start warm (the published root and all
touched inner nodes hit on their exact-version keys).
"""

from __future__ import annotations

from typing import Dict, List, TYPE_CHECKING

from repro.blobseer.metadata.segment_tree import (
    build_leaf_segments,
    build_write_metadata,
    split_vector_into_pieces,
)
from repro.blobseer.metadata.store import PartitionedMetadataStore
from repro.blobseer.writepath.batch import WriteReceipt
from repro.core.listio import IOVector
from repro.errors import StorageError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.blobseer.blob import BlobDescriptor
    from repro.blobseer.client import BlobClient
    from repro.blobseer.metadata.nodes import MetadataNode
    from repro.simengine.process import Process


class PipelinedCommitEngine:
    """Executes write commits for one client (see module docstring)."""

    def __init__(self, client: "BlobClient"):
        self.client = client
        # blob_id -> completion processes still in flight (deferred commits)
        self._inflight: Dict[str, List["Process"]] = {}

    # ------------------------------------------------------------------
    @property
    def pipelining(self) -> bool:
        """Whether commits overlap their control RPCs (client-configured)."""
        return self.client.write_pipelining

    def outstanding(self, blob_id: str = None) -> int:
        """Deferred ``complete`` RPCs not yet joined by :meth:`drain`."""
        if blob_id is not None:
            return len(self._inflight.get(blob_id, []))
        return sum(len(procs) for procs in self._inflight.values())

    # ------------------------------------------------------------------
    def _wcontrol(self, service, method, *args, trace_parent=None):
        """A write-side control round-trip (counted on the client)."""
        self.client.write_control_rpcs += 1
        result = yield from self.client._control(service, method, *args,
                                                 trace_parent=trace_parent)
        return result

    # ------------------------------------------------------------------
    def commit(self, blob_id: str, vector: IOVector, *,
               logical_writes: int = 1, defer_complete: bool = False,
               trace_parent=None):
        """Commit one write vector (possibly a merged batch) as one snapshot.

        ``logical_writes`` records how many queued application writes the
        vector coalesces; ``defer_complete`` (pipelined mode only) launches
        the ``complete`` RPC as a background process so the caller can start
        its next batch immediately — callers must eventually :meth:`drain`.

        ``trace_parent`` is the caller's span (a coalescer batch, usually).
        The commit span and its stage spans are all *detached* — commits
        may overlap each other (deferred completes) and overlap the rank
        mainline, so none of them may touch the context's span stack.
        """
        client = self.client
        sim = client.cluster.sim
        deployment = client.deployment
        if not vector.is_write or len(vector) == 0:
            raise StorageError("a vectored write needs at least one payload request")
        started_at = sim.now
        ctx = client.trace_ctx
        span = None
        if ctx is not None:
            span = ctx.begin_detached(
                "commit", cat="write",
                parent=trace_parent if trace_parent is not None else ctx.current,
                blob=blob_id, logical_writes=logical_writes)
        try:
            receipt = yield from self._commit_body(
                blob_id, vector, logical_writes, defer_complete,
                started_at, ctx, span)
        finally:
            if span is not None:
                ctx.end(span)
        return receipt

    def _commit_body(self, blob_id: str, vector: IOVector, logical_writes,
                     defer_complete, started_at, ctx, span):
        client = self.client
        sim = client.cluster.sim
        deployment = client.deployment
        blob = yield from client._descriptor(blob_id)

        # 1. chunk-aligned decomposition
        pieces = split_vector_into_pieces(blob, vector)

        # 2. placement (control-plane RPC to the provider manager)
        sizes = [piece.length for piece in pieces]
        providers = yield from self._wcontrol(
            deployment.provider_manager, "allocate", sizes, trace_parent=span)

        # 3. fully parallel, uncoordinated chunk uploads — one batched RPC
        #    per destination provider
        per_provider: Dict[str, list] = {}
        for piece, provider_id in zip(pieces, providers):
            piece.chunk = client._chunk_keys.next_key()
            piece.provider_id = provider_id
            per_provider.setdefault(provider_id, []).append(piece)
        upload_span = None
        if span is not None and per_provider:
            upload_span = ctx.begin_detached(
                "commit.upload", cat="write", parent=span,
                pieces=len(pieces), providers=len(per_provider))
        upload_calls = []
        for provider_id, provider_pieces in sorted(per_provider.items()):
            service = deployment.data_provider(provider_id)
            payload = [(piece.chunk, piece.data) for piece in provider_pieces]
            payload_bytes = sum(piece.length for piece in provider_pieces)
            upload_calls.append(
                client._rpc(service, "put_chunks", payload_bytes,
                            client.cluster.config.control_message_size, payload,
                            trace_parent=upload_span))

        # 4. version ticket — overlapped with the uploads when pipelining
        #    (the ticket is a tiny control message; the uploads dominate)
        if self.pipelining:
            uploads = sim.fanout(upload_calls)
            ticket_process = sim.process(
                self._wcontrol(deployment.version_manager, "assign_ticket",
                               blob_id, trace_parent=span),
                name=f"{client.name}:ticket")
            try:
                yield sim.all_of([uploads, ticket_process])
            except Exception:
                # an upload failed while the ticket was (possibly already)
                # assigned; release it or every later ticket's publication
                # would stall behind a write that can never complete
                yield from self._release_ticket(blob_id, ticket_process)
                raise
            # the join covers uploads *and* the (tiny) ticket round-trip;
            # the upload RPCs carry the exact per-provider intervals
            if upload_span is not None:
                ctx.end(upload_span)
            version, base_version = ticket_process.value
        else:
            if upload_calls:
                yield sim.fanout(upload_calls)
            if upload_span is not None:
                ctx.end(upload_span)
            version, base_version = yield from self._wcontrol(
                deployment.version_manager, "assign_ticket", blob_id,
                trace_parent=span)

        # 5. copy-on-write metadata, batched per metadata shard.  Any
        #    failure past this point holds an assigned ticket, so the error
        #    paths must release it (after undoing partially stored nodes) or
        #    publication would stall for every later writer.
        try:
            leaf_segments = build_leaf_segments(blob, pieces)
            nodes = build_write_metadata(blob, version, base_version, leaf_segments)
        except Exception:
            # nothing was stored yet: releasing the ticket is always safe
            yield from self._abort_version(blob_id, version)
            raise
        store_span = None
        if span is not None:
            store_span = ctx.begin_detached(
                "commit.put_nodes", cat="write", parent=span,
                nodes=len(nodes), version=version)
        try:
            yield from self._store_nodes(blob, nodes, trace_parent=store_span)
        except Exception:
            # a partially stored node set must never become reachable
            # through later snapshots' at-or-before lookups: roll it back,
            # then release the ticket.  If the rollback itself fails (a
            # metadata shard is down) leave the ticket assigned — a stalled
            # publication is recoverable, a torn snapshot is not.
            rolled_back = yield from self._rollback_metadata(blob, nodes)
            if rolled_back:
                yield from self._abort_version(blob_id, version)
            raise
        if store_span is not None:
            ctx.end(store_span)

        # 5b. write-through cache population: the writer keeps what it built
        if client.write_through_cache and client.metadata_cache is not None:
            self._prime_cache(blob, nodes)

        # 6. completion -> in-order publication at the version manager
        if defer_complete and self.pipelining:
            if span is not None:
                # the deferred complete outlives the commit span by design:
                # flow-linked (causal, exempt from interval nesting)
                complete_span = ctx.begin_detached(
                    "commit.complete", cat="write", parent=span,
                    flow=True, version=version)
                complete_gen = self._traced_complete(
                    blob_id, version, nodes, ctx, complete_span)
            else:
                complete_gen = self._complete(blob_id, version, nodes=nodes)
            process = sim.process(complete_gen,
                                  name=f"{client.name}:complete:v{version}")
            self._inflight.setdefault(blob_id, []).append(process)
        else:
            yield from self._complete(blob_id, version, nodes=nodes,
                                      trace_parent=span)

        client.bytes_written += vector.total_bytes()
        client.writes += 1
        client.logical_writes += logical_writes
        # this commit outdates any read hint planted earlier: a default read
        # served from it would miss the snapshot just produced.  Whoever
        # synchronizes with the new publication (the coalescer's barrier, a
        # collective's closing exchange) plants a fresh one afterwards.
        client.drop_read_hint(blob_id)
        return WriteReceipt(
            blob_id=blob_id,
            version=version,
            bytes_written=vector.total_bytes(),
            chunks=len(pieces),
            metadata_nodes=len(nodes),
            logical_writes=logical_writes,
            started_at=started_at,
            finished_at=sim.now,
        )

    def _traced_complete(self, blob_id: str, version: int, nodes, ctx, span):
        """Run a deferred ``complete`` under its flow span (closed exactly
        when the background process finishes, success or not)."""
        try:
            result = yield from self._complete(blob_id, version, nodes=nodes,
                                               trace_parent=span)
        finally:
            ctx.end(span)
        return result

    def drain(self, blob_id: str = None):
        """Join every deferred ``complete`` RPC (of one BLOB, or all of them).

        Returns the number of completions joined.  Failures propagate to the
        caller, exactly as a blocking ``complete`` would have.
        """
        if blob_id is None:
            keys = list(self._inflight)
        else:
            keys = [blob_id]
        processes: List["Process"] = []
        for key in keys:
            processes.extend(self._inflight.pop(key, []))
        if processes:
            yield self.client.cluster.sim.all_of(processes)
        return len(processes)

    # ------------------------------------------------------------------
    def _release_ticket(self, blob_id: str, ticket_process):
        """Abort the ticket of a commit whose uploads failed (if one exists).

        The ticket RPC ran concurrently with the uploads, so it may be in
        any state: still in flight (join it first), failed (nothing was
        assigned, nothing to release) or assigned (abort it at the version
        manager so publication can advance past the dead version).
        """
        if ticket_process.is_alive:
            try:
                yield ticket_process
            except Exception:
                return
        if not ticket_process.ok:
            return
        version, _base_version = ticket_process.value
        yield from self._abort_version(blob_id, version)

    def _abort_version(self, blob_id: str, version: int):
        """Release an assigned ticket at the version manager."""
        latest = yield from self._wcontrol(
            self.client.deployment.version_manager, "abort", blob_id, version)
        self.client.note_published(blob_id, latest)
        # a pending read hint predates this failed commit; by the time the
        # abort returns, versions *after* the hint may have published (e.g.
        # a peer aggregator's stripe of the same failed collective), so the
        # next default read must ask the version manager, not the hint
        self.client.drop_read_hint(blob_id)

    def _rollback_metadata(self, blob: "BlobDescriptor",
                           nodes: List["MetadataNode"]):
        """Best-effort removal of a failed write's nodes from every shard.

        Returns True only when every shard confirmed the removal — the
        precondition for safely aborting the ticket.
        """
        client = self.client
        request_size = client.cluster.config.metadata_request_size
        control_size = client.cluster.config.control_message_size
        rolled_back = True
        for index, shard_nodes in sorted(self._group_by_shard(nodes).items()):
            keys = [node.key for node in shard_nodes]
            try:
                yield from client._rpc(
                    client.deployment.metadata_providers[index], "remove_nodes",
                    len(keys) * request_size, control_size, keys)
            except Exception:
                rolled_back = False
        return rolled_back

    def _group_by_shard(self, nodes: List["MetadataNode"]) -> Dict[int, list]:
        """Group a write's nodes by the metadata shard that owns each key."""
        by_shard: Dict[int, list] = {}
        shard_count = len(self.client.deployment.metadata_providers)
        for node in nodes:
            index = PartitionedMetadataStore.partition_index(
                node.key.blob_id, node.key.offset, node.key.size, shard_count)
            by_shard.setdefault(index, []).append(node)
        return by_shard

    def _complete(self, blob_id: str, version: int, nodes=None,
                  trace_parent=None):
        """Report completion; remember the returned publication watermark.

        When the returned watermark already covers this commit's version,
        the write-through nodes are additionally offered to the node-local
        shared cache — co-located readers then start warm without any of
        them fetching.  A watermark still below ``version`` (an earlier
        ticket in flight) skips the offer: the shared tier must never hold
        a version the node has not seen published, and the nodes will be
        admitted the first time any co-tenant fetches them after
        publication.
        """
        latest = yield from self._wcontrol(
            self.client.deployment.version_manager, "complete", blob_id,
            version, trace_parent=trace_parent)
        self.client.note_published(blob_id, latest)
        client = self.client
        if (nodes and client.write_through_cache
                and client.shared_cache is not None and latest >= version):
            for node in nodes:
                client.shared_cache.publish(
                    blob_id, node.key.offset, node.key.size,
                    node.key.version, node)
        return latest

    def _store_nodes(self, blob: "BlobDescriptor", nodes: List["MetadataNode"],
                     trace_parent=None):
        """Ship the new snapshot's nodes, one ``put_nodes`` RPC per shard.

        Pipelined mode issues the per-shard RPCs in parallel (mirroring the
        batched read path); baseline mode loops them sequentially, which is
        what the write path did before this subsystem existed.
        """
        client = self.client
        deployment = client.deployment
        by_shard = self._group_by_shard(nodes)
        node_size = client.cluster.config.metadata_node_size
        control_size = client.cluster.config.control_message_size
        client.metadata_put_rpcs += len(by_shard)
        if self.pipelining:
            yield client.cluster.sim.fanout(
                [client._rpc(deployment.metadata_providers[index], "put_nodes",
                             len(shard_nodes) * node_size, control_size,
                             shard_nodes, trace_parent=trace_parent)
                 for index, shard_nodes in sorted(by_shard.items())])
        else:
            for index, shard_nodes in sorted(by_shard.items()):
                yield from client._rpc(
                    deployment.metadata_providers[index], "put_nodes",
                    len(shard_nodes) * node_size, control_size, shard_nodes,
                    trace_parent=trace_parent)

    def _prime_cache(self, blob: "BlobDescriptor",
                     nodes: List["MetadataNode"]) -> None:
        """Insert the just-published nodes under their exact-version keys.

        Cached entries only become observable once the snapshot is published
        (readers resolve a version before traversing), and published nodes
        are immutable — so priming before ``complete`` is safe.
        """
        cache = self.client.metadata_cache
        for node in nodes:
            cache.put(blob.blob_id, node.key.offset, node.key.size,
                      node.key.version, node)
        self.client.cache_primed_nodes += len(nodes)
