"""The write coalescer: queue vectored writes, commit them as one snapshot.

Thakur et al.'s ROMIO lesson — aggregate many small noncontiguous requests
into few large operations — applied to the *control plane* of the versioned
store: ``k`` queued writes flushed together cost one ``allocate``, one
version ticket, one merged copy-on-write metadata build and one ``complete``
instead of ``k`` of each, while their payload still travels as fully
parallel uncoordinated chunk uploads.

Semantics: a flushed batch is applied in queue order (later writes win on
overlaps), so the published snapshot equals the serial application of the
queued writes — MPI atomicity simply holds at batch granularity, and ticket
order across clients is untouched because a batch takes one ordinary ticket
at flush time.  Queued writes are invisible to *every* reader (including
their own client) until flushed; :meth:`WriteCoalescer.barrier` is the
explicit flush + publication wait that restores write-visible semantics —
the hook MPI ``sync``/``close``/atomic-mode calls use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, TYPE_CHECKING

from repro.blobseer.writepath.batch import StagedWrite, WriteBatch
from repro.core.listio import IOVector
from repro.errors import StorageError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.blobseer.client import BlobClient
    from repro.blobseer.writepath.batch import WriteReceipt


@dataclass
class CoalescerStats:
    """Coalescing counters surfaced through the benchmark harness."""

    staged_writes: int = 0
    batches: int = 0
    coalesced_writes: int = 0
    coalesced_bytes: int = 0
    auto_flushes: int = 0
    delay_flushes: int = 0
    delay_flush_failures: int = 0
    discarded_writes: int = 0

    @property
    def coalescing_factor(self) -> float:
        """Average queued writes per committed batch (1.0 = no coalescing)."""
        if not self.batches:
            return 0.0
        return self.coalesced_writes / self.batches

    def snapshot(self) -> Dict[str, float]:
        """Plain-dict form for JSON benchmark artifacts."""
        return {
            "staged_writes": self.staged_writes,
            "batches": self.batches,
            "coalesced_writes": self.coalesced_writes,
            "coalesced_bytes": self.coalesced_bytes,
            "auto_flushes": self.auto_flushes,
            "delay_flushes": self.delay_flushes,
            "delay_flush_failures": self.delay_flush_failures,
            "discarded_writes": self.discarded_writes,
            "coalescing_factor": self.coalescing_factor,
        }


class WriteCoalescer:
    """Per-client write queue committing merged snapshot batches.

    ``max_batch_writes`` / ``max_batch_bytes`` bound how much one batch may
    accumulate; crossing either threshold flushes the BLOB's queue
    automatically.  ``None`` (the default) means unbounded — flushing happens
    only at explicit :meth:`flush`/:meth:`barrier` calls.

    ``flush_max_delay`` bounds *publication latency* instead of batch size:
    when set, a write entering an empty queue arms a watchdog that flushes
    whatever accumulated after that many simulated seconds — so a slow
    producer's data reaches its consumers within a bounded delay even if the
    producer never crosses a size bound or calls flush itself.  A failing
    flush re-arms the timer with exponential backoff (doubling up to
    :attr:`RETRY_BACKOFF_LIMIT` times the base delay): a permanently dead
    backend is retried at a bounded, slowing rate instead of spinning
    allocate/abort round-trips every period — and when the backend comes
    back, the next retry publishes without anyone calling flush, so the
    latency bound degrades under faults but always recovers.
    """

    #: largest backoff multiplier a failing watchdog flush reaches
    RETRY_BACKOFF_LIMIT = 64

    def __init__(self, client: "BlobClient", *,
                 max_batch_writes: Optional[int] = None,
                 max_batch_bytes: Optional[int] = None,
                 flush_max_delay: Optional[float] = None):
        if max_batch_writes is not None and max_batch_writes <= 0:
            raise StorageError(
                f"max_batch_writes must be positive or None, got {max_batch_writes}")
        if max_batch_bytes is not None and max_batch_bytes <= 0:
            raise StorageError(
                f"max_batch_bytes must be positive or None, got {max_batch_bytes}")
        if flush_max_delay is not None and flush_max_delay <= 0:
            raise StorageError(
                f"flush_max_delay must be positive or None, got {flush_max_delay}")
        self.client = client
        self.max_batch_writes = max_batch_writes
        self.max_batch_bytes = max_batch_bytes
        self.flush_max_delay = flush_max_delay
        self.stats = CoalescerStats()
        self._pending: Dict[str, List[StagedWrite]] = {}
        # running queued-payload byte counters (kept in sync with _pending
        # so the byte-bound check is O(1) per enqueue)
        self._pending_bytes: Dict[str, int] = {}
        # highest snapshot version committed through this coalescer, per blob
        self._last_version: Dict[str, int] = {}
        # per-blob watchdog generation: armed when a write enters an empty
        # queue; a newer arm invalidates older timers so no batch is ever
        # flushed by a timer that predates it
        self._watchdog_timer: Dict[str, object] = {}
        # per-blob flush-in-progress gate: a batch stays in ``_pending``
        # until its commit's round-trips return, so a second flush entering
        # that window (watchdog vs explicit, in either order) must wait for
        # the first instead of committing the same batch twice
        self._flush_gates: Dict[str, object] = {}
        # (writes, bytes) of the batch currently committing, per blob —
        # subtracted from the batch-bound checks so writes enqueued during
        # the commit window don't trigger premature undersized auto-flushes
        self._inflight_batch: Dict[str, tuple] = {}
        # consecutive failed flush attempts per blob (bounds watchdog re-arms)
        self._flush_failures: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def pending_writes(self, blob_id: Optional[str] = None) -> int:
        """Queued-but-uncommitted writes (of one BLOB, or all of them)."""
        if blob_id is not None:
            return len(self._pending.get(blob_id, []))
        return sum(len(staged) for staged in self._pending.values())

    def pending_bytes(self, blob_id: Optional[str] = None) -> int:
        """Payload bytes sitting in the queue."""
        if blob_id is not None:
            return self._pending_bytes.get(blob_id, 0)
        return sum(self._pending_bytes.values())

    def last_committed_version(self, blob_id: str) -> int:
        """Highest snapshot version committed through this coalescer.

        Committed is not published: until the client's publication watermark
        reaches this version, read paths that promise read-your-writes must
        fence through :meth:`barrier`.
        """
        return self._last_version.get(blob_id, 0)

    def _should_flush(self, blob_id: str) -> bool:
        """True when the BLOB's queue crossed a configured batch bound.

        Writes of a batch whose commit is still in flight remain queued but
        are already spoken for — they don't count toward the *next* batch's
        bound.
        """
        committing_writes, committing_bytes = \
            self._inflight_batch.get(blob_id, (0, 0))
        if self.max_batch_writes is not None \
                and self.pending_writes(blob_id) - committing_writes \
                >= self.max_batch_writes:
            return True
        return self.max_batch_bytes is not None \
            and self.pending_bytes(blob_id) - committing_bytes \
            >= self.max_batch_bytes

    # ------------------------------------------------------------------
    def enqueue(self, blob_id: str, vector: IOVector, *,
                logical_writes: int = 1):
        """Queue one vectored write; auto-flush if a batch bound is crossed.

        Generator method (validation may fetch the BLOB descriptor, an
        auto-flush issues RPCs).  Returns the
        :class:`~repro.blobseer.writepath.batch.StagedWrite` handle, whose
        ``receipt`` is filled when the batch commits.  ``logical_writes``
        attributes how many application writes the vector represents (a
        collective aggregator stages merged stripes on behalf of whole rank
        groups).
        """
        if not vector.is_write or len(vector) == 0:
            raise StorageError("a vectored write needs at least one payload request")
        # validate now, like an immediate write would: an out-of-range
        # request must fail at its own call site, not poison the whole
        # merged batch at some later flush point
        blob = yield from self.client._descriptor(blob_id)
        for request in vector:
            if request.size:
                blob.validate_access(request.offset, request.size)
        staged = StagedWrite(blob_id=blob_id, vector=vector,
                             index=self.stats.staged_writes,
                             logical_writes=logical_writes)
        queue_was_empty = not self._pending.get(blob_id)
        self._pending.setdefault(blob_id, []).append(staged)
        self._pending_bytes[blob_id] = \
            self._pending_bytes.get(blob_id, 0) + vector.total_bytes()
        self.stats.staged_writes += 1
        if self._should_flush(blob_id):
            self.stats.auto_flushes += 1
            yield from self.flush(blob_id)
        elif queue_was_empty and self.flush_max_delay is not None:
            self._arm_watchdog(blob_id)
        return staged

    def _arm_watchdog(self, blob_id: str,
                      delay: Optional[float] = None) -> None:
        """Start the max-delay timer (``delay`` overrides for retry backoff).

        The timer is a cancellable :class:`~repro.simengine.Timer`, so an
        explicit/auto flush in the meantime disarms it in O(1) (lazy queue
        removal) instead of leaving a generation-checked process to wake up
        and discover it has nothing to do — the watchdog used to be the
        scheduler's single largest source of dead events.
        """
        self._invalidate_watchdog(blob_id)
        sim = self.client.cluster.sim
        self._watchdog_timer[blob_id] = sim.call_later(
            delay if delay is not None else self.flush_max_delay,
            self._watchdog_fired, blob_id)

    def _invalidate_watchdog(self, blob_id: str) -> None:
        """Cancel the BLOB's armed timer (if any): a flush that ran in the
        meantime means a fresh batch gets its own timer, so no batch is ever
        cut short."""
        timer = self._watchdog_timer.pop(blob_id, None)
        if timer is not None:
            timer.cancel()

    def _watchdog_fired(self, blob_id: str) -> None:
        """Timer callback: flush the queue whose oldest write waited out."""
        self._watchdog_timer.pop(blob_id, None)
        if not self._pending.get(blob_id):
            return
        self.stats.delay_flushes += 1
        self.client.cluster.sim.process(
            self._watchdog_flush(blob_id),
            name=f"{self.client.name}:flush-timer:{blob_id}")

    def _watchdog_flush(self, blob_id: str):
        try:
            # a watchdog flush runs outside the rank mainline: its batch
            # span must be a root, never parented under whatever the
            # mainline happens to have open at firing time
            yield from self.flush(blob_id, _mainline=False)
        except Exception:
            # a background flush has nobody to raise to; the queue stays
            # staged (flush keeps failed batches and re-arms the timer, so
            # the bound survives transient failures and the next explicit
            # flush/barrier surfaces a persistent one)
            self.stats.delay_flush_failures += 1

    def flush(self, blob_id: Optional[str] = None, *, _mainline: bool = True):
        """Commit the queued writes (of one BLOB, or all) as merged snapshots.

        One batch per BLOB: one ``allocate``, one ticket, one merged metadata
        build, one (deferred, when pipelining) ``complete``.  Returns the
        commit receipts.  Publication may still be in flight afterwards —
        use :meth:`barrier` for read-after-write.

        A failed commit leaves its batch staged: the caller can recover
        (e.g. after a provider comes back) and flush again without losing
        queued data.

        ``_mainline`` marks whether the caller runs in the rank's mainline
        flow (explicit flush/barrier/auto-flush) — tracing then parents the
        batch span under the current mainline span; a watchdog flush runs
        concurrently and gets a root span instead.
        """
        if blob_id is None:
            blob_ids = [key for key, staged in self._pending.items() if staged]
        else:
            blob_ids = [blob_id]
        ctx = self.client.trace_ctx
        receipts: List["WriteReceipt"] = []
        for key in blob_ids:
            # another flush of this BLOB (a watchdog's, or another process's)
            # may be mid-commit; wait it out, then commit whatever remains
            while key in self._flush_gates:
                yield self._flush_gates[key]
            staged = self._pending.get(key, [])
            if not staged:
                continue
            # cancel armed timers before committing: the staged writes stay
            # queued until the commit's round-trips finish, and a watchdog
            # firing in that window would commit the same batch twice
            self._invalidate_watchdog(key)
            batch = WriteBatch(key, tuple(staged))
            gate = self.client.cluster.sim.event()
            self._flush_gates[key] = gate
            self._inflight_batch[key] = (len(batch), batch.total_bytes())
            batch_span = None
            if ctx is not None:
                batch_span = ctx.begin_detached(
                    "coalescer.batch", cat="write",
                    parent=ctx.current if _mainline else None,
                    blob=key, writes=len(batch), bytes=batch.total_bytes())
            try:
                receipt = yield from self.client.writepath.commit(
                    key, batch.merged_vector(),
                    logical_writes=batch.logical_writes, defer_complete=True,
                    trace_parent=batch_span)
            except Exception:
                # the batch stays staged (retryable); keep its latency bound
                # with backed-off retries — slowing under a persistent fault,
                # still guaranteed to publish once the backend recovers
                failures = self._flush_failures.get(key, 0) + 1
                self._flush_failures[key] = failures
                if self.flush_max_delay is not None and self._pending.get(key):
                    # first retry at the base delay, then doubling to the cap
                    backoff = min(2 ** (failures - 1), self.RETRY_BACKOFF_LIMIT)
                    self._arm_watchdog(key, self.flush_max_delay * backoff)
                raise
            finally:
                if batch_span is not None:
                    ctx.end(batch_span)
                del self._flush_gates[key]
                del self._inflight_batch[key]
                gate.succeed()
            self._flush_failures.pop(key, None)
            # the commit succeeded: drop exactly the writes it covered (an
            # enqueue racing with the commit stays queued for the next batch,
            # and gets its own delay window)
            queue = self._pending.get(key, [])
            del queue[:len(batch)]
            self._pending_bytes[key] = \
                self._pending_bytes.get(key, 0) - batch.total_bytes()
            if queue and self.flush_max_delay is not None:
                self._arm_watchdog(key)
            batch.resolve(receipt)
            self._last_version[key] = max(
                receipt.version, self._last_version.get(key, 0))
            self.stats.batches += 1
            self.stats.coalesced_writes += batch.logical_writes
            self.stats.coalesced_bytes += receipt.bytes_written
            receipts.append(receipt)
        return receipts

    def discard(self, blob_id: str):
        """Drop a BLOB's queued-but-uncommitted writes without committing them.

        The hook for callers that *own* the staged data and know it must not
        be retried — e.g. a collective aggregator whose stripe commit failed
        after the group already reported the collective as failed.

        Generator method: a flush of the BLOB may have its commit round-trips
        in flight (the batch stays in the queue until they return), and
        popping the queue under it would corrupt the byte accounting and
        mislabel committed writes as dropped — so discard waits that flush
        out and only drops what genuinely never committed.  Returns the
        dropped staged writes.
        """
        while blob_id in self._flush_gates:
            yield self._flush_gates[blob_id]
        dropped = self._pending.pop(blob_id, [])
        self._pending_bytes.pop(blob_id, None)
        self._invalidate_watchdog(blob_id)
        # a fresh batch after the discard starts with a clean retry budget
        self._flush_failures.pop(blob_id, None)
        self.stats.discarded_writes += len(dropped)
        return dropped

    def barrier(self, blob_id: Optional[str] = None):
        """Flush, join deferred completions, wait for publication.

        After a barrier every write queued before it is visible to any
        reader — the atomic barrier MPI ``sync``/``close`` map onto.
        Returns the receipts of the batches this call flushed.
        """
        receipts = yield from self.flush(blob_id)
        yield from self.client.writepath.drain(blob_id)
        if blob_id is None:
            # a global fence covers hint-only BLOBs too: a hint may exist
            # for a BLOB this coalescer never committed to (planted by a
            # collective commit on a non-aggregator client)
            targets = sorted(set(self._last_version)
                             | set(self.client.hinted_blobs()))
        else:
            targets = [blob_id]
        flushed = {receipt.blob_id for receipt in receipts}
        for key in targets:
            # a barrier is a visibility fence: any read hint taken before it
            # must not survive (it could hide another writer's synced data)
            self.client.drop_read_hint(key)
            version = self._last_version.get(key, 0)
            # the deferred complete already told us the publication watermark
            # in most cases; only lag behind it costs a wait round-trip
            if version > self.client.version_hints.get(key, 0):
                yield from self.client.wait_published(key, version)
            if key in flushed:
                # this barrier just published this client's own writes: its
                # next read may start from the known watermark without asking
                # the version manager again (read-your-writes for free)
                self.client.offer_read_hint(key)
        return receipts

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<WriteCoalescer pending={self.pending_writes()} "
                f"batches={self.stats.batches} "
                f"factor={self.stats.coalescing_factor:.2f}>")
