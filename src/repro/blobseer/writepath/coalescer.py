"""The write coalescer: queue vectored writes, commit them as one snapshot.

Thakur et al.'s ROMIO lesson — aggregate many small noncontiguous requests
into few large operations — applied to the *control plane* of the versioned
store: ``k`` queued writes flushed together cost one ``allocate``, one
version ticket, one merged copy-on-write metadata build and one ``complete``
instead of ``k`` of each, while their payload still travels as fully
parallel uncoordinated chunk uploads.

Semantics: a flushed batch is applied in queue order (later writes win on
overlaps), so the published snapshot equals the serial application of the
queued writes — MPI atomicity simply holds at batch granularity, and ticket
order across clients is untouched because a batch takes one ordinary ticket
at flush time.  Queued writes are invisible to *every* reader (including
their own client) until flushed; :meth:`WriteCoalescer.barrier` is the
explicit flush + publication wait that restores write-visible semantics —
the hook MPI ``sync``/``close``/atomic-mode calls use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, TYPE_CHECKING

from repro.blobseer.writepath.batch import StagedWrite, WriteBatch
from repro.core.listio import IOVector
from repro.errors import StorageError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.blobseer.client import BlobClient
    from repro.blobseer.writepath.batch import WriteReceipt


@dataclass
class CoalescerStats:
    """Coalescing counters surfaced through the benchmark harness."""

    staged_writes: int = 0
    batches: int = 0
    coalesced_writes: int = 0
    coalesced_bytes: int = 0
    auto_flushes: int = 0

    @property
    def coalescing_factor(self) -> float:
        """Average queued writes per committed batch (1.0 = no coalescing)."""
        if not self.batches:
            return 0.0
        return self.coalesced_writes / self.batches

    def snapshot(self) -> Dict[str, float]:
        """Plain-dict form for JSON benchmark artifacts."""
        return {
            "staged_writes": self.staged_writes,
            "batches": self.batches,
            "coalesced_writes": self.coalesced_writes,
            "coalesced_bytes": self.coalesced_bytes,
            "auto_flushes": self.auto_flushes,
            "coalescing_factor": self.coalescing_factor,
        }


class WriteCoalescer:
    """Per-client write queue committing merged snapshot batches.

    ``max_batch_writes`` / ``max_batch_bytes`` bound how much one batch may
    accumulate; crossing either threshold flushes the BLOB's queue
    automatically.  ``None`` (the default) means unbounded — flushing happens
    only at explicit :meth:`flush`/:meth:`barrier` calls.
    """

    def __init__(self, client: "BlobClient", *,
                 max_batch_writes: Optional[int] = None,
                 max_batch_bytes: Optional[int] = None):
        if max_batch_writes is not None and max_batch_writes <= 0:
            raise StorageError(
                f"max_batch_writes must be positive or None, got {max_batch_writes}")
        if max_batch_bytes is not None and max_batch_bytes <= 0:
            raise StorageError(
                f"max_batch_bytes must be positive or None, got {max_batch_bytes}")
        self.client = client
        self.max_batch_writes = max_batch_writes
        self.max_batch_bytes = max_batch_bytes
        self.stats = CoalescerStats()
        self._pending: Dict[str, List[StagedWrite]] = {}
        # running queued-payload byte counters (kept in sync with _pending
        # so the byte-bound check is O(1) per enqueue)
        self._pending_bytes: Dict[str, int] = {}
        # highest snapshot version committed through this coalescer, per blob
        self._last_version: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def pending_writes(self, blob_id: Optional[str] = None) -> int:
        """Queued-but-uncommitted writes (of one BLOB, or all of them)."""
        if blob_id is not None:
            return len(self._pending.get(blob_id, []))
        return sum(len(staged) for staged in self._pending.values())

    def pending_bytes(self, blob_id: Optional[str] = None) -> int:
        """Payload bytes sitting in the queue."""
        if blob_id is not None:
            return self._pending_bytes.get(blob_id, 0)
        return sum(self._pending_bytes.values())

    def _should_flush(self, blob_id: str) -> bool:
        """True when the BLOB's queue crossed a configured batch bound."""
        if self.max_batch_writes is not None \
                and self.pending_writes(blob_id) >= self.max_batch_writes:
            return True
        return self.max_batch_bytes is not None \
            and self.pending_bytes(blob_id) >= self.max_batch_bytes

    # ------------------------------------------------------------------
    def enqueue(self, blob_id: str, vector: IOVector):
        """Queue one vectored write; auto-flush if a batch bound is crossed.

        Generator method (validation may fetch the BLOB descriptor, an
        auto-flush issues RPCs).  Returns the
        :class:`~repro.blobseer.writepath.batch.StagedWrite` handle, whose
        ``receipt`` is filled when the batch commits.
        """
        if not vector.is_write or len(vector) == 0:
            raise StorageError("a vectored write needs at least one payload request")
        # validate now, like an immediate write would: an out-of-range
        # request must fail at its own call site, not poison the whole
        # merged batch at some later flush point
        blob = yield from self.client._descriptor(blob_id)
        for request in vector:
            if request.size:
                blob.validate_access(request.offset, request.size)
        staged = StagedWrite(blob_id=blob_id, vector=vector,
                             index=self.stats.staged_writes)
        self._pending.setdefault(blob_id, []).append(staged)
        self._pending_bytes[blob_id] = \
            self._pending_bytes.get(blob_id, 0) + vector.total_bytes()
        self.stats.staged_writes += 1
        if self._should_flush(blob_id):
            self.stats.auto_flushes += 1
            yield from self.flush(blob_id)
        return staged

    def flush(self, blob_id: Optional[str] = None):
        """Commit the queued writes (of one BLOB, or all) as merged snapshots.

        One batch per BLOB: one ``allocate``, one ticket, one merged metadata
        build, one (deferred, when pipelining) ``complete``.  Returns the
        commit receipts.  Publication may still be in flight afterwards —
        use :meth:`barrier` for read-after-write.

        A failed commit leaves its batch staged: the caller can recover
        (e.g. after a provider comes back) and flush again without losing
        queued data.
        """
        if blob_id is None:
            blob_ids = [key for key, staged in self._pending.items() if staged]
        else:
            blob_ids = [blob_id]
        receipts: List["WriteReceipt"] = []
        for key in blob_ids:
            staged = self._pending.get(key, [])
            if not staged:
                continue
            batch = WriteBatch(key, tuple(staged))
            receipt = yield from self.client.writepath.commit(
                key, batch.merged_vector(),
                logical_writes=len(batch), defer_complete=True)
            # the commit succeeded: drop exactly the writes it covered (an
            # enqueue racing with the commit stays queued for the next batch)
            queue = self._pending.get(key, [])
            del queue[:len(batch)]
            self._pending_bytes[key] = \
                self._pending_bytes.get(key, 0) - batch.total_bytes()
            batch.resolve(receipt)
            self._last_version[key] = max(
                receipt.version, self._last_version.get(key, 0))
            self.stats.batches += 1
            self.stats.coalesced_writes += len(batch)
            self.stats.coalesced_bytes += receipt.bytes_written
            receipts.append(receipt)
        return receipts

    def barrier(self, blob_id: Optional[str] = None):
        """Flush, join deferred completions, wait for publication.

        After a barrier every write queued before it is visible to any
        reader — the atomic barrier MPI ``sync``/``close`` map onto.
        Returns the receipts of the batches this call flushed.
        """
        receipts = yield from self.flush(blob_id)
        yield from self.client.writepath.drain(blob_id)
        if blob_id is None:
            targets = list(self._last_version)
        else:
            targets = [blob_id]
        for key in targets:
            version = self._last_version.get(key, 0)
            # the deferred complete already told us the publication watermark
            # in most cases; only lag behind it costs a wait round-trip
            if version > self.client.version_hints.get(key, 0):
                yield from self.client.wait_published(key, version)
        return receipts

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<WriteCoalescer pending={self.pending_writes()} "
                f"batches={self.stats.batches} "
                f"factor={self.stats.coalescing_factor:.2f}>")
