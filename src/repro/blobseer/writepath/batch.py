"""Pure batch algebra of the write pipeline (no simulation dependencies).

A *staged* write is a vectored write a client has queued but not yet
committed; a *batch* is an ordered group of staged writes that will be
published as one snapshot.  Merging is nothing more than concatenating the
writes' requests in queue order: within one
:class:`~repro.core.listio.IOVector` later requests win on overlapping
bytes, which is exactly the serial application of the queued writes — so a
coalesced batch is byte-identical to committing its writes one by one, minus
the intermediate snapshots nobody was promised.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from repro.core.listio import IOVector
from repro.errors import StorageError


class WriteReceipt:
    """What a committed vectored write (or write batch) returns to its caller."""

    __slots__ = ("blob_id", "version", "bytes_written", "chunks", "metadata_nodes",
                 "logical_writes", "started_at", "finished_at")

    def __init__(self, blob_id: str, version: int, bytes_written: int,
                 chunks: int, metadata_nodes: int,
                 started_at: float, finished_at: float,
                 logical_writes: int = 1):
        self.blob_id = blob_id
        self.version = version
        self.bytes_written = bytes_written
        self.chunks = chunks
        self.metadata_nodes = metadata_nodes
        #: how many queued vectored writes this snapshot coalesced (1 = no
        #: coalescing)
        self.logical_writes = logical_writes
        self.started_at = started_at
        self.finished_at = finished_at

    @property
    def elapsed(self) -> float:
        """Simulated duration of the commit."""
        return self.finished_at - self.started_at

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<WriteReceipt {self.blob_id} v{self.version} "
                f"{self.bytes_written}B writes={self.logical_writes} "
                f"in {self.elapsed:.6f}s>")


def merge_write_vectors(vectors: Sequence[IOVector]) -> IOVector:
    """Concatenate write vectors in order into one vector (later writes win).

    The result applied as a single snapshot equals applying the input vectors
    serially in list order, because intra-vector overlap resolution is
    already "last request wins".
    """
    if not vectors:
        raise StorageError("merge_write_vectors() needs at least one vector")
    requests = []
    for vector in vectors:
        if not vector.is_write or len(vector) == 0:
            raise StorageError("only non-empty write vectors can be merged")
        requests.extend(vector)
    return IOVector(requests)


@dataclass
class StagedWrite:
    """One queued vectored write awaiting its batch commit.

    ``receipt`` is filled in when the batch holding this write is flushed;
    until then the write is invisible to every reader (including its own
    client — use the coalescer's barrier for read-after-write).
    """

    blob_id: str
    vector: IOVector
    index: int
    receipt: Optional[WriteReceipt] = None
    #: how many *application* writes this staged vector represents.  1 for a
    #: plain queued write; a collective aggregator staging a merged stripe on
    #: behalf of several MPI ranks attributes their logical writes here, so
    #: per-write normalization stays honest across multi-rank batches.
    logical_writes: int = 1

    def __post_init__(self) -> None:
        if self.logical_writes < 0:
            raise StorageError(
                f"logical_writes must be non-negative, got {self.logical_writes}")

    @property
    def committed(self) -> bool:
        """True once the write's batch has been committed as a snapshot."""
        return self.receipt is not None

    @property
    def version(self) -> int:
        """Snapshot version the write landed in (its batch's version)."""
        if self.receipt is None:
            raise StorageError(f"staged write #{self.index} is not committed yet")
        return self.receipt.version


@dataclass
class WriteBatch:
    """An ordered group of staged writes committed as one snapshot."""

    blob_id: str
    staged: Tuple[StagedWrite, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        self.staged = tuple(self.staged)
        if not self.staged:
            raise StorageError("a write batch needs at least one staged write")
        for write in self.staged:
            if write.blob_id != self.blob_id:
                raise StorageError(
                    f"staged write for {write.blob_id!r} cannot join a "
                    f"batch for {self.blob_id!r}")

    def __len__(self) -> int:
        return len(self.staged)

    @property
    def logical_writes(self) -> int:
        """Application writes the batch coalesces (>= its staged count)."""
        return sum(write.logical_writes for write in self.staged)

    def merged_vector(self) -> IOVector:
        """The batch as one write vector (queue order, later writes win)."""
        return merge_write_vectors([write.vector for write in self.staged])

    def total_bytes(self) -> int:
        """Payload bytes over all staged writes (before overlap resolution)."""
        return sum(write.vector.total_bytes() for write in self.staged)

    def resolve(self, receipt: WriteReceipt) -> None:
        """Attach the commit receipt to every staged write of the batch."""
        for write in self.staged:
            write.receipt = receipt
