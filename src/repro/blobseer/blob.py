"""BLOB identifiers and descriptors.

A BLOB (Binary Large OBject) is BlobSeer's unit of storage: a flat,
versioned sequence of bytes, transparently striped into fixed-size chunks.
The paper stores each shared MPI file directly as one BLOB, so no explicit
striping is needed at the MPI-I/O layer.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import InvalidRegion

BlobId = str


def _round_up_power_of_two(value: int) -> int:
    """Smallest power of two >= value (and >= 1)."""
    result = 1
    while result < value:
        result *= 2
    return result


@dataclass(frozen=True)
class BlobDescriptor:
    """Static description of a BLOB.

    Attributes
    ----------
    blob_id:
        Globally unique name of the BLOB.
    chunk_size:
        Striping unit in bytes; every chunk stored at data providers spans at
        most this many bytes and never crosses a ``chunk_size`` boundary.
    capacity:
        Addressable size of the BLOB's byte space.  It is the requested size
        rounded up so that the metadata segment tree is a complete binary
        tree: ``chunk_size * 2**k``.  Writes beyond ``capacity`` are rejected
        (the MPI-I/O layer sizes the BLOB from the file's maximum extent).
    requested_size:
        The size asked for at creation time (what ``stat`` reports initially).
    """

    blob_id: BlobId
    chunk_size: int
    capacity: int
    requested_size: int

    @classmethod
    def create(cls, blob_id: BlobId, size: int, chunk_size: int) -> "BlobDescriptor":
        """Build a descriptor for a new BLOB of ``size`` bytes."""
        if chunk_size <= 0:
            raise InvalidRegion(f"chunk_size must be positive, got {chunk_size}")
        if size < 0:
            raise InvalidRegion(f"size must be non-negative, got {size}")
        num_chunks = max(1, -(-size // chunk_size))  # ceil div, at least 1
        capacity = _round_up_power_of_two(num_chunks) * chunk_size
        return cls(blob_id=blob_id, chunk_size=chunk_size, capacity=capacity,
                   requested_size=size)

    @property
    def num_leaves(self) -> int:
        """Number of chunk-sized leaves of the metadata tree."""
        return self.capacity // self.chunk_size

    @property
    def tree_depth(self) -> int:
        """Depth of the metadata segment tree (root = depth 0)."""
        depth = 0
        leaves = self.num_leaves
        while leaves > 1:
            leaves //= 2
            depth += 1
        return depth

    def leaf_offset(self, byte_offset: int) -> int:
        """Offset of the leaf (chunk range) containing ``byte_offset``."""
        return (byte_offset // self.chunk_size) * self.chunk_size

    def validate_access(self, offset: int, size: int) -> None:
        """Raise :class:`~repro.errors.OutOfBounds` for out-of-range accesses."""
        from repro.errors import OutOfBounds

        if offset < 0 or size < 0:
            raise InvalidRegion(f"invalid access ({offset}, {size})")
        if offset + size > self.capacity:
            raise OutOfBounds(
                f"access [{offset}, {offset + size}) exceeds BLOB capacity "
                f"{self.capacity} of {self.blob_id!r}")
