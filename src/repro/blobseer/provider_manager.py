"""The provider manager: chunk placement / load balancing.

The provider manager is the control-plane service that writers contact to
learn *where* to put each new chunk.  The paper's second design principle —
data striping with a load-balancing allocation strategy that spreads writes
over the storage elements in a round-robin fashion — is implemented by the
pluggable :class:`AllocationStrategy` classes below.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, TYPE_CHECKING

from repro.cluster.rpc import Service
from repro.errors import ProviderUnavailable
from repro.simengine.rand import SCOPE_WORKLOAD, DeterministicRNG

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.node import Node


class AllocationStrategy:
    """Strategy interface: choose a provider for each chunk of a write."""

    name = "abstract"

    def select(self, providers: Sequence[str], sizes: Sequence[int],
               load: Dict[str, int]) -> List[str]:
        """Return one provider id per entry of ``sizes``.

        Parameters
        ----------
        providers:
            Identifiers of the currently alive providers.
        sizes:
            Sizes (bytes) of the chunks about to be written.
        load:
            Cumulative bytes already allocated to each provider.
        """
        raise NotImplementedError


class RoundRobinAllocation(AllocationStrategy):
    """Cycle through providers in a fixed order (the paper's default)."""

    name = "round_robin"

    def __init__(self) -> None:
        self._cursor = 0

    def select(self, providers: Sequence[str], sizes: Sequence[int],
               load: Dict[str, int]) -> List[str]:
        chosen: List[str] = []
        for _ in sizes:
            chosen.append(providers[self._cursor % len(providers)])
            self._cursor += 1
        return chosen


class LoadBalancedAllocation(AllocationStrategy):
    """Greedily place each chunk on the provider with the fewest bytes so far."""

    name = "load_balanced"

    def select(self, providers: Sequence[str], sizes: Sequence[int],
               load: Dict[str, int]) -> List[str]:
        running = {provider: load.get(provider, 0) for provider in providers}
        chosen: List[str] = []
        for size in sizes:
            target = min(providers, key=lambda provider: (running[provider], provider))
            chosen.append(target)
            running[target] += size
        return chosen


class RandomAllocation(AllocationStrategy):
    """Uniform random placement (a baseline for the striping ablation)."""

    name = "random"

    def __init__(self, rng: Optional[DeterministicRNG] = None, seed: int = 0):
        self._rng = rng or DeterministicRNG(seed)

    def select(self, providers: Sequence[str], sizes: Sequence[int],
               load: Dict[str, int]) -> List[str]:
        # placement shapes which providers hold data — workload-scoped,
        # so toggling cost-only streams (network jitter) never moves it
        stream = self._rng.scope(SCOPE_WORKLOAD).stream("allocation")
        return [providers[int(stream.integers(0, len(providers)))] for _ in sizes]


STRATEGIES = {
    RoundRobinAllocation.name: RoundRobinAllocation,
    LoadBalancedAllocation.name: LoadBalancedAllocation,
    RandomAllocation.name: RandomAllocation,
}


def make_strategy(name: str, **kwargs) -> AllocationStrategy:
    """Instantiate a strategy by name (``round_robin``, ``load_balanced``, ``random``)."""
    try:
        factory = STRATEGIES[name]
    except KeyError:
        raise ValueError(
            f"unknown allocation strategy {name!r}; "
            f"choose from {sorted(STRATEGIES)}") from None
    return factory(**kwargs)


class ProviderManager:
    """Pure allocation bookkeeping shared by the simulated service."""

    def __init__(self, strategy: Optional[AllocationStrategy] = None):
        self.strategy = strategy or RoundRobinAllocation()
        self._providers: List[str] = []
        self._alive: Dict[str, bool] = {}
        #: cumulative bytes allocated per provider (allocation-time estimate)
        self.allocated_bytes: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def register(self, provider_id: str) -> None:
        """Add a provider to the allocation pool."""
        if provider_id not in self._providers:
            self._providers.append(provider_id)
        self._alive[provider_id] = True
        self.allocated_bytes.setdefault(provider_id, 0)

    def mark_failed(self, provider_id: str) -> None:
        """Exclude a provider from future allocations."""
        self._alive[provider_id] = False

    def mark_recovered(self, provider_id: str) -> None:
        """Re-admit a previously failed provider."""
        if provider_id not in self._alive:
            raise ProviderUnavailable(f"unknown provider {provider_id!r}")
        self._alive[provider_id] = True

    @property
    def alive_providers(self) -> List[str]:
        """Providers currently eligible for allocation (registration order)."""
        return [provider for provider in self._providers if self._alive[provider]]

    # ------------------------------------------------------------------
    def allocate(self, sizes: Sequence[int]) -> List[str]:
        """Pick a provider for each chunk size, updating the load table."""
        alive = self.alive_providers
        if not alive:
            raise ProviderUnavailable("no alive data providers to allocate on")
        chosen = self.strategy.select(alive, sizes, dict(self.allocated_bytes))
        if len(chosen) != len(sizes):
            raise ProviderUnavailable(
                f"strategy {self.strategy.name} returned {len(chosen)} targets "
                f"for {len(sizes)} chunks")
        for provider, size in zip(chosen, sizes):
            self.allocated_bytes[provider] = self.allocated_bytes.get(provider, 0) + size
        return chosen

    def load_imbalance(self) -> float:
        """max/mean ratio of allocated bytes (1.0 = perfectly balanced)."""
        loads = [self.allocated_bytes.get(p, 0) for p in self._providers]
        if not loads or sum(loads) == 0:
            return 1.0
        mean = sum(loads) / len(loads)
        return max(loads) / mean if mean else 1.0


class SimProviderManager(Service):
    """The provider manager deployed as a cluster service."""

    def __init__(self, node: "Node", manager: Optional[ProviderManager] = None):
        super().__init__(node, name="provider-manager")
        self.manager = manager or ProviderManager()

    def allocate(self, sizes: Sequence[int]):
        """RPC handler: allocate providers for ``sizes`` (control-plane only)."""
        chosen = self.manager.allocate(sizes)
        return chosen
        yield  # pragma: no cover - makes this a generator function

    def mark_failed(self, provider_id: str):
        """RPC handler: exclude a crashed provider."""
        self.manager.mark_failed(provider_id)
        return None
        yield  # pragma: no cover - makes this a generator function
