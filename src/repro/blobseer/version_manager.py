"""The version manager: snapshot tickets and in-order publication.

The version manager is the serialization point of BlobSeer — but a very
cheap one: writers contact it only twice per write (once to obtain a version
*ticket*, once to report completion), exchanging tiny control messages, while
the heavy data transfers proceed with no coordination at all.  Snapshots are
*published* strictly in ticket order: snapshot ``v`` becomes visible to
readers only once every snapshot ``<= v`` has reported completion, which is
exactly what makes each published snapshot equivalent to a serial application
of whole vectored writes — i.e. MPI atomicity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple, TYPE_CHECKING

from repro.blobseer.blob import BlobDescriptor
from repro.cluster.rpc import Service
from repro.errors import BlobNotFound, StorageError, VersionNotFound

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.node import Node
    from repro.simengine import Event


@dataclass
class _BlobVersionState:
    """Per-BLOB publication bookkeeping."""

    descriptor: BlobDescriptor
    next_version: int = 1
    latest_published: int = 0
    completed: Set[int] = field(default_factory=set)
    assigned: Set[int] = field(default_factory=set)
    aborted: Set[int] = field(default_factory=set)


class VersionManager:
    """Pure (simulation-independent) ticketing and publication logic."""

    def __init__(self) -> None:
        self._blobs: Dict[str, _BlobVersionState] = {}
        #: total tickets handed out (benchmark metric)
        self.tickets_assigned: int = 0
        #: total snapshots published (benchmark metric)
        self.snapshots_published: int = 0
        #: tickets released by failed writers (their versions publish empty)
        self.tickets_aborted: int = 0

    # ------------------------------------------------------------------
    def create_blob(self, descriptor: BlobDescriptor,
                    exist_ok: bool = False) -> BlobDescriptor:
        """Register a new BLOB; version 0 (all zeros) is immediately published.

        With ``exist_ok`` an existing BLOB's descriptor is returned instead of
        raising — the behaviour collective MPI-I/O opens rely on.
        """
        if descriptor.blob_id in self._blobs:
            if exist_ok:
                return self._blobs[descriptor.blob_id].descriptor
            raise StorageError(f"blob {descriptor.blob_id!r} already exists")
        self._blobs[descriptor.blob_id] = _BlobVersionState(descriptor=descriptor)
        return descriptor

    def get_blob(self, blob_id: str) -> BlobDescriptor:
        """Descriptor lookup."""
        return self._state(blob_id).descriptor

    def blob_exists(self, blob_id: str) -> bool:
        """True if the BLOB has been created."""
        return blob_id in self._blobs

    def _state(self, blob_id: str) -> _BlobVersionState:
        try:
            return self._blobs[blob_id]
        except KeyError:
            raise BlobNotFound(f"unknown blob {blob_id!r}") from None

    # ------------------------------------------------------------------
    def assign_ticket(self, blob_id: str) -> Tuple[int, int]:
        """Hand out the next snapshot version; returns ``(version, base_version)``.

        The base version is the ticket's predecessor: the snapshot against
        which untouched data is shadowed, and the snapshot right before this
        write in the serialization order.
        """
        state = self._state(blob_id)
        version = state.next_version
        state.next_version += 1
        state.assigned.add(version)
        self.tickets_assigned += 1
        return version, version - 1

    def complete(self, blob_id: str, version: int) -> Tuple[int, List[int]]:
        """Report that the write holding ``version`` finished its metadata.

        Returns ``(latest_published, newly_published)``: publication advances
        over every consecutive completed version.
        """
        state = self._state(blob_id)
        if version not in state.assigned:
            raise VersionNotFound(
                f"version {version} of {blob_id!r} was never assigned")
        if version <= state.latest_published:
            # published snapshots drop out of ``completed``, so this duplicate
            # report is recognized by the publication watermark instead
            raise StorageError(
                f"version {version} of {blob_id!r} is already published; "
                f"completion was reported again after publication")
        if version in state.completed:
            raise StorageError(
                f"version {version} of {blob_id!r} reported complete twice "
                f"(still awaiting publication)")
        state.completed.add(version)
        newly_published = self._advance(state)
        return state.latest_published, newly_published

    def abort(self, blob_id: str, version: int) -> Tuple[int, List[int]]:
        """Release a ticket whose write failed before completing.

        The version still occupies its slot in the publication order, so it
        is marked publishable *empty* (no metadata was reachable under it —
        readers of the aborted version see its predecessor's contents) and
        the watermark may advance past it.  Without this, one crashed-or-
        failed writer would stall publication for every later ticket.
        """
        state = self._state(blob_id)
        if version not in state.assigned:
            raise VersionNotFound(
                f"version {version} of {blob_id!r} was never assigned")
        if version <= state.latest_published:
            raise StorageError(
                f"version {version} of {blob_id!r} is already published "
                f"and cannot be aborted")
        if version in state.completed:
            raise StorageError(
                f"version {version} of {blob_id!r} already reported "
                f"completion and cannot be aborted")
        state.completed.add(version)
        state.aborted.add(version)
        self.tickets_aborted += 1
        newly_published = self._advance(state)
        return state.latest_published, newly_published

    def _advance(self, state: _BlobVersionState) -> List[int]:
        """Publish every consecutive completed version; return the new ones."""
        newly_published: List[int] = []
        while (state.latest_published + 1) in state.completed:
            state.latest_published += 1
            state.completed.discard(state.latest_published)
            newly_published.append(state.latest_published)
            if state.latest_published in state.aborted:
                state.aborted.discard(state.latest_published)
            else:
                self.snapshots_published += 1
        return newly_published

    # ------------------------------------------------------------------
    def latest_published(self, blob_id: str) -> int:
        """Newest readable snapshot version."""
        return self._state(blob_id).latest_published

    def is_published(self, blob_id: str, version: int) -> bool:
        """True if ``version`` is readable (<= latest published)."""
        return version <= self._state(blob_id).latest_published

    def pending_versions(self, blob_id: str) -> List[int]:
        """Assigned-but-unpublished versions (diagnostics / failure tests)."""
        state = self._state(blob_id)
        return sorted(v for v in state.assigned
                      if v > state.latest_published)


class SimVersionManager(Service):
    """The version manager deployed as a cluster service.

    ``publish_cost`` charges a fixed amount of simulated time per published
    snapshot inside the (serialized) publication step; the metadata-overhead
    ablation (ABL3) sweeps it to show how cheap this serialization point has
    to be for the versioning approach to keep its advantage.
    """

    def __init__(self, node: "Node", manager: Optional[VersionManager] = None,
                 publish_cost: float = 0.0):
        super().__init__(node, name="version-manager")
        self.manager = manager or VersionManager()
        self.publish_cost = publish_cost
        # blob_id -> list of (version, event) waiting for publication
        self._waiters: Dict[str, List[Tuple[int, "Event"]]] = {}

    # ------------------------------------------------------------------
    # RPC handlers (generator methods)
    # ------------------------------------------------------------------
    def create_blob(self, descriptor: BlobDescriptor, exist_ok: bool = False):
        """Register a BLOB."""
        return self.manager.create_blob(descriptor, exist_ok)
        yield  # pragma: no cover - makes this a generator function

    def get_blob(self, blob_id: str):
        """Descriptor lookup."""
        return self.manager.get_blob(blob_id)
        yield  # pragma: no cover - makes this a generator function

    def assign_ticket(self, blob_id: str):
        """Hand out the next version ticket."""
        return self.manager.assign_ticket(blob_id)
        yield  # pragma: no cover - makes this a generator function

    def complete(self, blob_id: str, version: int):
        """Record completion; publish in order; wake waiting readers."""
        latest, newly_published = self.manager.complete(blob_id, version)
        if self.publish_cost and newly_published:
            yield self.node.sim.timeout(self.publish_cost * len(newly_published))
        self._wake_waiters(blob_id, latest)
        return latest

    def abort(self, blob_id: str, version: int):
        """Release a failed writer's ticket; publication may advance past it."""
        latest, newly_published = self.manager.abort(blob_id, version)
        if self.publish_cost and newly_published:
            yield self.node.sim.timeout(self.publish_cost * len(newly_published))
        self._wake_waiters(blob_id, latest)
        return latest

    def latest(self, blob_id: str):
        """Newest readable snapshot."""
        return self.manager.latest_published(blob_id)
        yield  # pragma: no cover - makes this a generator function

    def wait_published(self, blob_id: str, version: int):
        """Block the caller until ``version`` becomes readable."""
        if self.manager.is_published(blob_id, version):
            return self.manager.latest_published(blob_id)
        event = self.node.sim.event()
        self._waiters.setdefault(blob_id, []).append((version, event))
        yield event
        return self.manager.latest_published(blob_id)

    # ------------------------------------------------------------------
    def _wake_waiters(self, blob_id: str, latest: int) -> None:
        waiters = self._waiters.get(blob_id, [])
        remaining: List[Tuple[int, "Event"]] = []
        for version, event in waiters:
            if version <= latest:
                event.succeed(latest)
            else:
                remaining.append((version, event))
        self._waiters[blob_id] = remaining
