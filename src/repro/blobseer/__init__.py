"""A from-scratch re-implementation of the BlobSeer data-sharing service.

BlobSeer (Nicolae et al., JPDC 2011) is the versioning-oriented distributed
storage service the paper builds its back-end on.  Its architecture — which
this package reproduces component by component — consists of:

* **data providers** (:mod:`repro.blobseer.provider`): store fixed-size,
  immutable chunks;
* **a provider manager** (:mod:`repro.blobseer.provider_manager`): tells
  writers which providers to place new chunks on (round-robin /
  load-balanced allocation — the paper's *data striping* principle);
* **metadata providers** (:mod:`repro.blobseer.metadata`): a distributed
  store of the versioned segment-tree nodes that describe each snapshot
  (shadowing / copy-on-write — the paper's *versioning* principle);
* **a version manager** (:mod:`repro.blobseer.version_manager`): assigns
  snapshot version numbers to writes and publishes them in order, which is
  the only point of (brief) serialization in the system;
* **the client library** (:mod:`repro.blobseer.client`): orchestrates the
  write protocol (upload chunks → obtain ticket → weave metadata → publish)
  and the versioned read protocol;
* **the write pipeline** (:mod:`repro.blobseer.writepath`): the commit
  engine behind the client — coalesced snapshot batches, control RPCs
  overlapped with the data transfers, and write-through population of the
  client's metadata cache.

The stock BlobSeer interface only supports *contiguous* reads and writes; the
paper's contribution — the non-contiguous, MPI-atomic extension — lives in
:mod:`repro.vstore`, as a subclass of the client defined here.
"""

from repro.blobseer.blob import BlobDescriptor, BlobId
from repro.blobseer.chunk import ChunkKey
from repro.blobseer.client import BlobClient
from repro.blobseer.deployment import BlobSeerDeployment
from repro.blobseer.provider import DataProviderStore, SimDataProvider
from repro.blobseer.provider_manager import (
    AllocationStrategy,
    LoadBalancedAllocation,
    ProviderManager,
    RandomAllocation,
    RoundRobinAllocation,
    SimProviderManager,
)
from repro.blobseer.version_manager import SimVersionManager, VersionManager
from repro.blobseer.writepath import (
    PipelinedCommitEngine,
    WriteCoalescer,
    WriteReceipt,
)

__all__ = [
    "PipelinedCommitEngine",
    "WriteCoalescer",
    "WriteReceipt",
    "BlobDescriptor",
    "BlobId",
    "ChunkKey",
    "BlobClient",
    "BlobSeerDeployment",
    "DataProviderStore",
    "SimDataProvider",
    "AllocationStrategy",
    "RoundRobinAllocation",
    "LoadBalancedAllocation",
    "RandomAllocation",
    "ProviderManager",
    "SimProviderManager",
    "VersionManager",
    "SimVersionManager",
]
