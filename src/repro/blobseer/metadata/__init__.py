"""Versioned segment-tree metadata with shadowing (copy-on-write).

Each published snapshot of a BLOB is described by a binary segment tree whose
leaves cover one chunk each.  Nodes are immutable and identified by
``(blob id, version, offset, size)``.  A write for snapshot version ``v``
creates *only* the nodes on the paths from the root to the leaves it touches;
every untouched subtree is *shadowed* — referenced from the new nodes by a
``(version hint, offset, size)`` child reference that resolves to the newest
node of that range with version <= hint.  Reads therefore see a frozen,
consistent snapshot no matter what concurrent writers are doing, which is the
versioning principle the paper relies on to eliminate locking.

* :mod:`repro.blobseer.metadata.nodes` — node / segment value types;
* :mod:`repro.blobseer.metadata.segment_tree` — pure functions building the
  new nodes of a (possibly non-contiguous) write and planning versioned reads;
* :mod:`repro.blobseer.metadata.store` — the metadata node store with
  at-or-before version resolution, plus hash partitioning over several
  metadata providers;
* :mod:`repro.blobseer.metadata.provider` — the metadata provider service;
* :mod:`repro.blobseer.metadata.cache` — the client-side cache of immutable
  nodes and resolved version hints used by the read hot path;
* :mod:`repro.blobseer.metadata.sharedcache` — the node-local *shared* cache
  tier co-located clients attach to (admission gated on the published
  watermark);
* :mod:`repro.blobseer.metadata.policy` — pluggable eviction policies for
  the shared tier (LRU, segmented LRU, level-aware top-level pinning).
"""

from repro.blobseer.metadata.cache import CacheStats, MetadataNodeCache
from repro.blobseer.metadata.policy import (
    EvictionPolicy,
    LevelAwarePolicy,
    LRUPolicy,
    SegmentedLRUPolicy,
    make_policy,
)
from repro.blobseer.metadata.sharedcache import NodeCacheService, SharedCacheStats
from repro.blobseer.metadata.nodes import ChildRef, LeafSegment, MetadataNode, NodeKey
from repro.blobseer.metadata.store import MetadataStore, PartitionedMetadataStore
from repro.blobseer.metadata.provider import SimMetadataProvider
from repro.blobseer.metadata.segment_tree import (
    build_write_metadata,
    leaf_pieces_for_vector,
    overlay_segments,
)

__all__ = [
    "NodeKey",
    "ChildRef",
    "LeafSegment",
    "MetadataNode",
    "MetadataStore",
    "PartitionedMetadataStore",
    "SimMetadataProvider",
    "CacheStats",
    "MetadataNodeCache",
    "NodeCacheService",
    "SharedCacheStats",
    "EvictionPolicy",
    "LRUPolicy",
    "SegmentedLRUPolicy",
    "LevelAwarePolicy",
    "make_policy",
    "build_write_metadata",
    "leaf_pieces_for_vector",
    "overlay_segments",
]
