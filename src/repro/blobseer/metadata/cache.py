"""Client-side cache of versioned metadata nodes.

Metadata nodes are immutable and version hints are only ever followed for
*published* snapshots, so the result of an at-or-before lookup
``(blob, offset, size, hint) -> node-or-None`` can never change once it has
been observed: publication of snapshot ``v`` requires every write with a
ticket ``<= v`` to have stored its metadata first, and all hints reachable
from a published snapshot are ``<= v``.  That makes cached entries valid
forever — including negative entries (``None`` = "range never written as of
that hint"), which spare the client a round-trip for zero-filled holes.

One map backs the cache, keyed by the full lookup ``(blob, offset, size,
hint)``.  A node fetched under hint ``h`` is additionally inserted under its
exact version ``(blob, offset, size, node.version)`` — traversals of other
read versions route through that exact hint, so the alias lets them share
the cached node.  Alias entries are ordinary entries: under a bounded cache
each occupies one slot and is evicted on its own LRU schedule.

Eviction is LRU over that map (entries refresh their position on every hit
and overwrite) and is off by default: a metadata node costs a few hundred
bytes and the simulated workloads touch bounded trees.  ``capacity`` bounds
the number of entries when set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.blobseer.metadata.nodes import MetadataNode

#: cache key of one at-or-before lookup
HintKey = Tuple[str, int, int, int]

#: sentinel distinguishing "not cached" from a cached negative (None) result
_ABSENT = object()


@dataclass
class CacheStats:
    """Hit/miss counters surfaced through the benchmark harness."""

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups served (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache (0.0 when unused)."""
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups

    def snapshot(self) -> Dict[str, float]:
        """Plain-dict form for JSON benchmark artifacts."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "insertions": self.insertions,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


class MetadataNodeCache:
    """LRU cache of resolved metadata lookups (see module docstring).

    ``get`` returns ``(found, node_or_none)`` so a cached negative result is
    distinguishable from a cache miss.  ``capacity=None`` disables eviction.
    """

    def __init__(self, capacity: Optional[int] = None):
        if capacity is not None and capacity <= 0:
            raise ValueError(f"capacity must be positive or None, got {capacity}")
        self.capacity = capacity
        self.stats = CacheStats()
        # hint map: insertion order doubles as LRU order (move-to-end on hit)
        self._resolved: Dict[HintKey, Optional[MetadataNode]] = {}

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._resolved)

    def get(self, blob_id: str, offset: int, size: int,
            hint: int) -> Tuple[bool, Optional[MetadataNode]]:
        """Cached result of ``get_at_or_before(blob_id, offset, size, hint)``.

        Returns ``(True, node_or_None)`` on a hit, ``(False, None)`` on a
        miss; counts one hit or miss per call.
        """
        key = (blob_id, offset, size, hint)
        value = self._resolved.get(key, _ABSENT)
        if value is _ABSENT:
            self.stats.misses += 1
            return False, None
        self.stats.hits += 1
        if self.capacity is not None:
            # refresh LRU position
            del self._resolved[key]
            self._resolved[key] = value
        return True, value

    def put(self, blob_id: str, offset: int, size: int, hint: int,
            node: Optional[MetadataNode]) -> None:
        """Record one resolved lookup (``node=None`` caches a negative)."""
        self._insert((blob_id, offset, size, hint), node)
        if node is not None and node.key.version != hint:
            # alias under the node's exact version: any future hint that
            # resolves through this version hits without a round-trip
            self._insert((blob_id, offset, size, node.key.version), node)

    def _insert(self, key: HintKey, node: Optional[MetadataNode]) -> None:
        fresh = key not in self._resolved
        if not fresh:
            # re-insert so an overwrite also refreshes the LRU position
            del self._resolved[key]
        self._resolved[key] = node
        if fresh:
            self.stats.insertions += 1
            if self.capacity is not None and len(self._resolved) > self.capacity:
                oldest = next(iter(self._resolved))
                del self._resolved[oldest]
                self.stats.evictions += 1

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        self._resolved.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<MetadataNodeCache entries={len(self._resolved)} "
                f"hits={self.stats.hits} misses={self.stats.misses}>")
