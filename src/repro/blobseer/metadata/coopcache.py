"""Cluster-wide cooperative metadata cache tier: provider/sampler roles.

The node-local shared tier (:mod:`repro.blobseer.metadata.sharedcache`)
stops at the node boundary, so ``metadata_rpcs_per_read`` flattens at the
``1/ranks_per_node`` ideal no matter how many nodes the cluster has.  This
module lets compute nodes answer *each other's* misses before anyone falls
back to the authoritative metadata shards, demoting the shards to a cold
tier.  Versioned tree nodes are immutable, so cross-node sharing needs no
invalidation protocol — the hard parts are **routing** (who do I ask?) and
**admission** (what may enter a pool?), both solved here without any
coordination traffic:

Roles
    Each ``(node, blob)`` pair deterministically hashes to a **provider**
    or **sampler** role (:func:`role_for`) — no messages, no agreement
    protocol, identical on every node and every replay.  A provider is a
    read-through custodian: a probe miss makes it fetch the node from the
    authoritative shard itself, admit it into its own pool (through its
    own watermark gate) and answer — so its pool converges on a full
    replica of the hot set it is probed for.  A sampler answers only what
    its custody-aligned slice already holds; a miss is a miss and the
    prober falls back to the shard.

Custody
    Every lookup key hashes to one responsible participant
    (:func:`custodian_index`, hint excluded so all versions of a range
    colocate).  A prober sends each miss to the key's custodian — unless
    the custodian is itself, in which case it asks the first *provider*
    for that blob along the ring (or nobody, on a one-node cluster).

Admission
    Both directions stay watermark-gated.  The prober ships its own
    observed-published watermark with the probe (an observed *published*
    version claim, exactly as trustworthy as a local tenant's
    ``note_published``); answers are admitted into the *receiving* node's
    pool only through that node's own gate — so a crashed client's
    pre-publication state can't poison a remote pool from either side.

Probes travel over the real simulated RPC transport (request/response
transfers, handling overhead), so the tier's benefit is measured against
its true network cost, and a dead peer (fault injection) simply answers
"unavailable": the prober falls back to the authoritative shard and byte
identity is preserved by construction.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.blobseer.metadata.sharedcache import FETCH_FAILED, NodeCacheService
from repro.blobseer.metadata.store import PartitionedMetadataStore
from repro.cluster.rpc import Service

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.blobseer.deployment import BlobSeerDeployment
    from repro.cluster.node import Node

#: the cooperative node roles
PROVIDER = "provider"
SAMPLER = "sampler"


class _Miss:
    """Wire marker for "this peer has no answer" (distinct from a cached
    negative result, which is a genuine answer of ``None``)."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<PEER_MISS>"


#: singleton miss marker used in probe responses
PEER_MISS = _Miss()


def _stable_fraction(tag: str) -> float:
    """A stable hash of ``tag`` mapped into ``[0, 1)`` (SHA-256, like the
    metadata shard partitioning — never Python's salted ``hash``)."""
    digest = hashlib.sha256(tag.encode()).digest()
    return int.from_bytes(digest[:4], "little") / 2 ** 32


def role_for(node_name: str, blob_id: str,
             provider_fraction: float = 0.5) -> str:
    """The cooperative role of ``node_name`` for ``blob_id``.

    Pure and deterministic: derived from a stable hash of
    ``(node_name, blob_id)`` alone — no RNG stream, no coordination, the
    same answer on every node, every process and every replay.
    """
    if _stable_fraction(f"coop-role:{node_name}:{blob_id}") \
            < provider_fraction:
        return PROVIDER
    return SAMPLER


def custodian_index(blob_id: str, offset: int, size: int,
                    participant_count: int) -> int:
    """The ring slot responsible for one lookup range.

    The version hint is deliberately excluded so every version of a range
    key colocates on one custodian — at-or-before answers for different
    hints usually resolve to the same immutable node.
    """
    digest = hashlib.sha256(
        f"coop-custody:{blob_id}:{offset}:{size}".encode()).digest()
    return int.from_bytes(digest[:4], "little") % participant_count


class PeerCacheStats:
    """Counters of one node's cooperative peer service."""

    def __init__(self):
        #: probed keys answered from this node (pool or read-through)
        self.served_hits: int = 0
        #: probed keys this node could not answer
        self.served_misses: int = 0
        #: authoritative shard fetches performed on behalf of probers
        self.read_throughs: int = 0
        #: probe RPCs answered "unavailable" because the service was dead
        self.unavailable_probes: int = 0

    @property
    def served_lookups(self) -> int:
        return self.served_hits + self.served_misses

    def snapshot(self) -> Dict[str, int]:
        return {
            "served_hits": self.served_hits,
            "served_misses": self.served_misses,
            "read_throughs": self.read_throughs,
            "unavailable_probes": self.unavailable_probes,
        }


class PeerCacheService(Service):
    """The cooperative face of one compute node's shared cache pool.

    Registered in the deployment's :class:`CoopDirectory` when the first
    cooperative client attaches on the node; answers ``probe`` RPCs from
    other nodes' clients out of the same :class:`NodeCacheService` pool
    the node's own tenants share.
    """

    def __init__(self, node: "Node", pool: NodeCacheService,
                 directory: "CoopDirectory"):
        super().__init__(node, name=f"coopcache:{node.name}")
        self.pool = pool
        self.directory = directory
        self.stats = PeerCacheStats()
        #: fault-injection hook: a dead service answers "unavailable"
        self.alive = True

    # ------------------------------------------------------------------
    def kill(self) -> None:
        """Fault injection: the node's cooperative daemon dies.

        The pool is dropped too (its memory died with the daemon); local
        tenants simply refill it.  Dropping cached immutable published
        nodes is always safe — that is the whole cooperative bet.
        """
        self.alive = False
        self.pool.clear()

    def role(self, blob_id: str) -> str:
        """This node's role for ``blob_id`` (see :func:`role_for`)."""
        return role_for(self.node.name, blob_id,
                        self.directory.provider_fraction)

    # ------------------------------------------------------------------
    # RPC handler (generator method)
    # ------------------------------------------------------------------
    def probe(self, blob_id: str, requests, watermark: int = 0):
        """Answer a batch of at-or-before lookups for a remote prober.

        ``requests`` is a list of ``(offset, size, hint)`` tuples; the
        response is aligned with it — each entry a resolved node, a cached
        negative (``None``), or :data:`PEER_MISS`.  ``watermark`` is the
        prober's observed-published version for ``blob_id``: an observed
        *publication* claim (never write-through state), so feeding it to
        this pool's gate is exactly as safe as a local tenant's
        ``note_published``.  Returns ``None`` when the service is dead —
        the prober treats the whole probe as a miss and falls back to the
        authoritative shards.
        """
        if not self.alive:
            self.stats.unavailable_probes += 1
            return None
        pool = self.pool
        pool.note_published(blob_id, watermark)
        read_through = self.role(blob_id) == PROVIDER
        results: List[object] = []
        for offset, size, hint in requests:
            hit, node = pool.peek(blob_id, offset, size, hint)
            if hit:
                self.stats.served_hits += 1
                results.append(node)
                continue
            if read_through:
                # provider read-through: fetch authoritatively on the
                # prober's behalf, admit into our own pool, answer
                answer = yield from self._read_through(
                    blob_id, offset, size, hint)
                if answer is not PEER_MISS:
                    self.stats.served_hits += 1
                    results.append(answer)
                    continue
            self.stats.served_misses += 1
            results.append(PEER_MISS)
        return results

    def _read_through(self, blob_id: str, offset: int, size: int, hint: int):
        """Authoritative fetch on behalf of a prober (providers only).

        Coalesced through this node's in-flight table, so a storm of
        probers missing on the same key still costs one upstream fetch.
        A failed fetch degrades to a miss: the prober falls back to the
        shard itself.
        """
        pool = self.pool
        sim = self.directory.cluster.sim
        leader, owner, event = pool.coalesce(sim, blob_id, offset, size,
                                             hint, owner="service")
        if not leader:
            if owner != "service":
                # a local tenant is already fetching this key: answering
                # "miss" (one redundant shard RPC for the prober) is the
                # price of never closing a cross-node wait cycle — an RPC
                # handler may only park on fetches that resolve through a
                # direct shard RPC
                return PEER_MISS
            pool.stats.coalesced_fetches += 1
            value = yield event
            if value is FETCH_FAILED:
                return PEER_MISS
            return value
        try:
            node = yield from self._fetch_authoritative(
                blob_id, offset, size, hint)
        except Exception:
            pool.coalesce_abort(blob_id, offset, size, hint)
            return PEER_MISS
        self.stats.read_throughs += 1
        # gated admission: the prober's watermark was noted at probe start,
        # so a probe for a published snapshot always passes its own gate
        pool.publish(blob_id, offset, size, hint, node)
        pool.coalesce_resolve(blob_id, offset, size, hint, node)
        return node

    def _fetch_authoritative(self, blob_id: str, offset: int, size: int,
                             hint: int):
        deployment = self.directory.deployment
        shard_count = len(deployment.metadata_providers)
        shard = deployment.metadata_providers[
            PartitionedMetadataStore.partition_index(
                blob_id, offset, size, shard_count)]
        config = self.directory.cluster.config
        node = yield from self.directory.cluster.rpc.call(
            self.node, shard, "get_node",
            config.metadata_request_size, config.metadata_node_size,
            blob_id, offset, size, hint)
        return node


class CoopDirectory:
    """The deployment's view of the cooperative tier: who participates.

    Membership is just "compute nodes whose clients enabled the
    cooperative tier", discovered as they attach; routing over the sorted
    member list plus the stable custody/role hashes is what makes the
    whole tier coordination-free.
    """

    def __init__(self, deployment: "BlobSeerDeployment",
                 provider_fraction: float = 0.5):
        self.deployment = deployment
        self.cluster = deployment.cluster
        self.provider_fraction = provider_fraction
        self.services: Dict[str, PeerCacheService] = {}
        self._sorted_names: Optional[List[str]] = None

    # ------------------------------------------------------------------
    def register(self, node: "Node",
                 pool: NodeCacheService) -> PeerCacheService:
        """Enroll ``node`` (idempotent), exposing ``pool`` to its peers."""
        service = self.services.get(node.name)
        if service is None:
            service = PeerCacheService(node, pool, self)
            self.services[node.name] = service
            self._sorted_names = None
        return service

    def participants(self) -> List[str]:
        """Sorted member node names (the custody ring, cached)."""
        if self._sorted_names is None:
            self._sorted_names = sorted(self.services)
        return self._sorted_names

    # ------------------------------------------------------------------
    def route(self, prober: str, blob_id: str, offset: int,
              size: int) -> Optional[PeerCacheService]:
        """The one peer ``prober`` should ask about a lookup range.

        The key's custodian, normally; when the prober *is* the custodian
        (its own shared tier already missed, so asking itself is useless)
        the first **provider**-role peer for this blob along the ring.
        ``None`` means nobody can help — go straight to the shards.
        """
        participants = self.participants()
        if len(participants) < 2:
            return None
        slot = custodian_index(blob_id, offset, size, len(participants))
        custodian = participants[slot]
        if custodian != prober:
            return self.services[custodian]
        for step in range(1, len(participants)):
            candidate = participants[(slot + step) % len(participants)]
            if candidate != prober and role_for(
                    candidate, blob_id, self.provider_fraction) == PROVIDER:
                return self.services[candidate]
        return None

    def stats(self) -> Dict[str, int]:
        """Aggregate peer-serving counters over every member service."""
        totals = {"served_hits": 0, "served_misses": 0, "read_throughs": 0,
                  "unavailable_probes": 0}
        for service in self.services.values():
            snapshot = service.stats.snapshot()
            for key in totals:
                totals[key] += snapshot[key]
        totals["services"] = len(self.services)
        totals["probe_rpcs"] = sum(service.calls.get("probe", 0)
                                   for service in self.services.values())
        return totals
