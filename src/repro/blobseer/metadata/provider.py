"""Metadata provider service: one shard of the versioned segment tree.

BlobSeer organizes metadata providers as a DHT; nodes are spread over them by
hashing their range key.  Metadata lives in memory (it is small — hundreds of
bytes per node) so the handlers charge no disk time; the RPC transport still
charges network time proportional to the number of nodes shipped.
"""

from __future__ import annotations

from typing import Iterable, Optional, TYPE_CHECKING

from repro.blobseer.metadata.nodes import MetadataNode
from repro.blobseer.metadata.store import MetadataStore
from repro.cluster.rpc import Service

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.node import Node


class SimMetadataProvider(Service):
    """A metadata shard deployed on a cluster node."""

    def __init__(self, node: "Node", store: Optional[MetadataStore] = None):
        super().__init__(node, name=f"metadata:{node.name}")
        self.store = store or MetadataStore(store_id=node.name)

    # ------------------------------------------------------------------
    # RPC handlers (generator methods)
    # ------------------------------------------------------------------
    def put_nodes(self, nodes: Iterable[MetadataNode]):
        """Store a batch of metadata nodes produced by one write."""
        count = 0
        for node in nodes:
            self.store.put_node(node)
            count += 1
        return count
        yield  # pragma: no cover - makes this a generator function

    def remove_nodes(self, keys):
        """Erase the exact-key nodes of a failed write's rollback."""
        return self.store.remove_nodes(keys)
        yield  # pragma: no cover - makes this a generator function

    def get_node(self, blob_id: str, offset: int, size: int, version: int):
        """At-or-before lookup of one node."""
        return self.store.get_at_or_before(blob_id, offset, size, version)
        yield  # pragma: no cover - makes this a generator function

    def get_nodes(self, blob_id: str, requests):
        """Batched at-or-before lookups of one read-frontier level.

        ``requests`` is a list of ``(offset, size, version_hint)`` tuples; the
        response is aligned with it (``None`` entries for never-written
        ranges).  One such RPC replaces one :meth:`get_node` round-trip per
        node, collapsing a level's metadata traffic for this shard into a
        single exchange.
        """
        return self.store.get_nodes(blob_id, requests)
        yield  # pragma: no cover - makes this a generator function
