"""Metadata provider service: one shard of the versioned segment tree.

BlobSeer organizes metadata providers as a DHT; nodes are spread over them by
hashing their range key.  Metadata lives in memory (it is small — hundreds of
bytes per node) so the handlers charge no disk time; the RPC transport still
charges network time proportional to the number of nodes shipped.
"""

from __future__ import annotations

from typing import Iterable, Optional, TYPE_CHECKING

from repro.blobseer.metadata.nodes import MetadataNode
from repro.blobseer.metadata.store import MetadataStore, PartitionedMetadataStore
from repro.cluster.rpc import Service

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.node import Node


class SimMetadataProvider(Service):
    """A metadata shard deployed on a cluster node.

    ``shard_index``/``shard_count`` tell the provider which slice of the
    hash partition it owns — what lets it answer *speculative* child
    prefetches authoritatively (a foreign range key missing from this shard
    lives elsewhere; only owned keys may be answered, negatives included).
    """

    def __init__(self, node: "Node", store: Optional[MetadataStore] = None,
                 shard_index: int = 0, shard_count: int = 1):
        super().__init__(node, name=f"metadata:{node.name}")
        self.store = store or MetadataStore(store_id=node.name)
        self.shard_index = shard_index
        self.shard_count = shard_count
        #: extra nodes shipped through speculative prefetch (observability)
        self.nodes_prefetched: int = 0

    # ------------------------------------------------------------------
    # RPC handlers (generator methods)
    # ------------------------------------------------------------------
    def put_nodes(self, nodes: Iterable[MetadataNode]):
        """Store a batch of metadata nodes produced by one write."""
        count = 0
        for node in nodes:
            self.store.put_node(node)
            count += 1
        return count
        yield  # pragma: no cover - makes this a generator function

    def remove_nodes(self, keys):
        """Erase the exact-key nodes of a failed write's rollback."""
        return self.store.remove_nodes(keys)
        yield  # pragma: no cover - makes this a generator function

    def get_node(self, blob_id: str, offset: int, size: int, version: int):
        """At-or-before lookup of one node."""
        return self.store.get_at_or_before(blob_id, offset, size, version)
        yield  # pragma: no cover - makes this a generator function

    def get_nodes(self, blob_id: str, requests, prefetch: bool = False):
        """Batched at-or-before lookups of one read-frontier level.

        ``requests`` is a list of ``(offset, size, version_hint)`` tuples; the
        response is aligned with it (``None`` entries for never-written
        ranges).  One such RPC replaces one :meth:`get_node` round-trip per
        node, collapsing a level's metadata traffic for this shard into a
        single exchange.

        With ``prefetch`` the shard additionally resolves, for every inner
        node it returns, the child lookups the traversal will issue next —
        but only those whose range key this shard owns — and returns
        ``(nodes, extras)`` instead of the plain list.  The caller pays the
        extra response bytes; the saved level round-trips are the trade.
        """
        nodes = self.store.get_nodes(blob_id, requests)
        if not prefetch:
            return nodes
        extras = self.store.prefetch_candidates(
            blob_id, nodes, owns=lambda offset, size:
            PartitionedMetadataStore.partition_index(
                blob_id, offset, size, self.shard_count) == self.shard_index)
        self.nodes_prefetched += len(extras)
        return nodes, extras
        yield  # pragma: no cover - makes this a generator function
