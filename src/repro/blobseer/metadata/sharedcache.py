"""Node-local shared metadata cache: one service per simulated compute node.

Every client (MPI rank) placed on a node attaches to that node's
:class:`NodeCacheService`, so co-located ranks share one pool of resolved
metadata lookups instead of each re-fetching the identical upper-tree nodes
— the gap independent readers on the same node hit even after collective
plan broadcasts warmed the *participants*.  Versioned tree nodes are
immutable, so sharing needs no invalidation protocol; the one thing the
shared tier must never do is hold an entry a crashed co-tenant produced for
a version that never published.

**Admission is therefore gated on the published watermark.**  A private
:class:`~repro.blobseer.metadata.cache.MetadataNodeCache` may hold
write-through entries of a version whose ``complete`` is still in flight —
if that client dies, its private cache dies with it and nothing leaks.  The
shared tier outlives its clients, and an aborted ticket *publishes empty*
(the version manager republishes the base snapshot under the dead version
number so publication never stalls), so a poisoned shared entry under that
version would serve the dead writer's rolled-back nodes to every later
reader on the node.  :meth:`NodeCacheService.publish` refuses any entry
whose version hint exceeds the newest *published* version the service has
been told about (:meth:`note_published`, fed by every attached client's
watermark observations); read-path traversals always target published
snapshots, so their results pass the gate as soon as the node has seen the
version — while a writer's pre-publication state never enters.

Access is modeled as free of simulated time: the service stands in for a
shared-memory segment (or a node-local daemon reached over loopback), whose
cost is negligible against the 100 µs-scale network round-trip a metadata
RPC costs — exactly the trade the subsystem exists to exploit.

Eviction is pluggable (:mod:`repro.blobseer.metadata.policy`): plain LRU,
segmented LRU, or the level-aware policy that pins the top tree levels
every traversal shares.  Per-tier statistics (hits/misses/insertions/
evictions plus gate rejections) feed the benchmark harness.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.blobseer.metadata.policy import EvictionPolicy, make_policy
from repro.errors import StorageError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.blobseer.metadata.nodes import MetadataNode

#: cache key of one at-or-before lookup (same shape as the private cache)
HintKey = Tuple[str, int, int, int]

#: sentinel distinguishing "not cached" from a cached negative (None) result
_ABSENT = object()

#: value a coalesced in-flight event resolves to when the leading fetch
#: failed.  The event is *succeeded* with this sentinel rather than failed:
#: a failed event nobody happens to be waiting on anymore would surface as
#: an unhandled simulator-level error, while waiters that do see the
#: sentinel re-raise (or fall back) themselves.
FETCH_FAILED = object()


class SharedCacheStats:
    """Counters of one node's shared tier (surfaced in benchmark artifacts)."""

    def __init__(self):
        self.hits: int = 0
        self.misses: int = 0
        self.insertions: int = 0
        self.evictions: int = 0
        #: publications refused because the entry's version hint exceeded
        #: the node's published watermark (the safety gate; see module doc)
        self.unpublished_rejections: int = 0
        #: admissions declined because capacity was exhausted (a policy may
        #: decline rather than evict — e.g. fully pinned level-aware caches)
        self.capacity_rejections: int = 0
        #: upstream fetches avoided because a simultaneous misser for the
        #: same key was already in flight on this node (the waiter parked
        #: on the leader's sim event instead of fetching)
        self.coalesced_fetches: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups served (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the shared tier."""
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups

    def snapshot(self) -> Dict[str, float]:
        """Plain-dict form for JSON benchmark artifacts."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "insertions": self.insertions,
            "evictions": self.evictions,
            "unpublished_rejections": self.unpublished_rejections,
            "capacity_rejections": self.capacity_rejections,
            "coalesced_fetches": self.coalesced_fetches,
            "hit_rate": self.hit_rate,
        }


class NodeCacheService:
    """The shared metadata cache of one simulated compute node.

    ``capacity`` bounds the entry count (``None`` = unbounded); ``policy``
    is an eviction-policy spec (see
    :func:`repro.blobseer.metadata.policy.make_policy`) or instance.
    Clients attach with :meth:`attach` and detach with :meth:`detach`; the
    entry pool deliberately survives detaches — immutable published nodes
    stay valid for the next tenant, which is the whole point of node-local
    sharing (and safe precisely because of the admission gate).
    """

    def __init__(self, node_name: str, capacity: Optional[int] = None,
                 policy="lru"):
        if capacity is not None and capacity <= 0:
            raise StorageError(
                f"capacity must be positive or None, got {capacity}")
        self.node_name = node_name
        self.capacity = capacity
        self.policy: EvictionPolicy = make_policy(policy)
        self.stats = SharedCacheStats()
        self._entries: Dict[HintKey, Optional["MetadataNode"]] = {}
        #: newest *published* version this node has observed, per BLOB —
        #: the admission gate (fed by attached clients' note_published)
        self._watermarks: Dict[str, int] = {}
        #: names of currently attached clients (observability/debugging)
        self.attached: List[str] = []
        #: in-flight fetch table: lookup key -> the sim event simultaneous
        #: missers park on instead of issuing their own upstream fetch
        self._inflight: Dict[HintKey, object] = {}

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def attach(self, client_name: str) -> None:
        """Register a co-located client (bookkeeping only).

        Idempotent: re-attaching an already-attached client is a no-op, so
        one client can never hold two slots — a duplicate would leave a
        phantom attachment behind after a single detach and break every
        consumer that treats ``attached`` as the set of live tenants.
        """
        if client_name not in self.attached:
            self.attached.append(client_name)

    def detach(self, client_name: str) -> None:
        """Unregister a client; cached published entries stay resident."""
        if client_name in self.attached:
            self.attached.remove(client_name)

    # ------------------------------------------------------------------
    # the publication watermark gate
    # ------------------------------------------------------------------
    def note_published(self, blob_id: str, version: int) -> None:
        """Record that ``version`` of ``blob_id`` is known published."""
        if version > self._watermarks.get(blob_id, 0):
            self._watermarks[blob_id] = version

    def watermark(self, blob_id: str) -> int:
        """Newest published version this node has observed for ``blob_id``."""
        return self._watermarks.get(blob_id, 0)

    # ------------------------------------------------------------------
    def get(self, blob_id: str, offset: int, size: int,
            hint: int) -> Tuple[bool, Optional["MetadataNode"]]:
        """Shared-tier lookup: ``(True, node_or_None)`` on a hit."""
        key = (blob_id, offset, size, hint)
        value = self._entries.get(key, _ABSENT)
        if value is _ABSENT:
            self.stats.misses += 1
            return False, None
        self.stats.hits += 1
        self.policy.record_hit(key)
        return True, value

    def peek(self, blob_id: str, offset: int, size: int,
             hint: int) -> Tuple[bool, Optional["MetadataNode"]]:
        """Stat-free lookup for remote cooperative probes.

        Identical to :meth:`get` except hit/miss counters stay untouched:
        the cross-surface fall-through identity equates this service's
        lookups with its local tenants' private-cache misses, and a remote
        peer probe is neither.  Recency is still refreshed
        (:meth:`~repro.blobseer.metadata.policy.EvictionPolicy.record_peek`)
        — an entry hot enough to be probed from another node is worth
        keeping resident.
        """
        key = (blob_id, offset, size, hint)
        value = self._entries.get(key, _ABSENT)
        if value is _ABSENT:
            return False, None
        self.policy.record_peek(key)
        return True, value

    # ------------------------------------------------------------------
    # in-flight fetch coalescing
    # ------------------------------------------------------------------
    def coalesce(self, sim, blob_id: str, offset: int, size: int, hint: int,
                 owner: str = "client"):
        """Join (or lead) the in-flight upstream fetch for one key.

        Returns ``(leader, leading_owner, event)``.  The first misser for a
        key becomes the leader: it receives a fresh pending event it MUST
        later settle through :meth:`coalesce_resolve` (success) or
        :meth:`coalesce_abort` (failure) after performing the fetch itself.
        Every simultaneous misser for the same key — a co-tenant rank or a
        remote prober routed through this node — gets ``leader=False`` and
        may park on the leader's event, whose value is the fetched node
        (possibly ``None`` for a negative result) or :data:`FETCH_FAILED`.

        ``owner`` tags who leads (``"client"`` for a rank's own level
        fetch, ``"service"`` for a cooperative read-through) — RPC probe
        handlers only park on *service*-led fetches, which always resolve
        through a direct shard RPC; parking a handler on a client-led
        fetch could close a cross-node wait cycle (two clients each
        leading a key while their probes park on each other's).  A caller
        that decides not to park simply ignores the event; only callers
        that do park record the avoided fetch
        (``stats.coalesced_fetches``).
        """
        key = (blob_id, offset, size, hint)
        entry = self._inflight.get(key)
        if entry is not None:
            leading_owner, event = entry
            return False, leading_owner, event
        event = sim.event()
        self._inflight[key] = (owner, event)
        return True, owner, event

    def coalesce_resolve(self, blob_id: str, offset: int, size: int,
                         hint: int, node: Optional["MetadataNode"]) -> None:
        """Leader hand-off: wake every parked waiter with the fetched node."""
        entry = self._inflight.pop((blob_id, offset, size, hint), None)
        if entry is not None and not entry[1].triggered:
            entry[1].succeed(node)

    def coalesce_abort(self, blob_id: str, offset: int, size: int,
                       hint: int) -> None:
        """The leading fetch failed: wake waiters with FETCH_FAILED."""
        entry = self._inflight.pop((blob_id, offset, size, hint), None)
        if entry is not None and not entry[1].triggered:
            entry[1].succeed(FETCH_FAILED)

    def publish(self, blob_id: str, offset: int, size: int, hint: int,
                node: Optional["MetadataNode"]) -> bool:
        """Offer one resolved lookup to the shared tier.

        Admitted only when ``hint`` does not exceed the node's published
        watermark — the gate that keeps a crashed client's pre-publication
        state out of the shared pool (see module docstring).  Returns
        whether the entry (or its alias) was admitted.
        """
        if hint > self.watermark(blob_id):
            self.stats.unpublished_rejections += 1
            return False
        admitted = self._insert((blob_id, offset, size, hint), node)
        if node is not None and node.key.version != hint:
            # alias under the exact version, like the private cache: other
            # hints resolving through this version share the entry.  The
            # node's version is <= hint (at-or-before), so it passes the
            # same gate by construction.
            admitted = self._insert(
                (blob_id, offset, size, node.key.version), node) or admitted
        return admitted

    def _insert(self, key: HintKey, node: Optional["MetadataNode"]) -> bool:
        if key in self._entries:
            self._entries[key] = node
            self.policy.record_hit(key)
            return True
        self._entries[key] = node
        self.policy.record_insert(key)
        self.stats.insertions += 1
        if self.capacity is not None and len(self._entries) > self.capacity:
            victim = self.policy.select_victim()
            if victim is None:  # pragma: no cover - defensive (policies
                # always return a key they hold); decline the admission
                del self._entries[key]
                self.policy.record_remove(key)
                self.stats.insertions -= 1
                self.stats.capacity_rejections += 1
                return False
            del self._entries[victim]
            self.policy.record_remove(victim)
            if victim == key:
                # the policy chose the newcomer itself (everything else is
                # pinned): the admission is declined, not an eviction, and
                # the insertion is rolled back so the counters reconcile
                self.stats.insertions -= 1
                self.stats.capacity_rejections += 1
                return False
            self.stats.evictions += 1
        return True

    def clear(self) -> None:
        """Drop every entry (watermarks and counters are kept)."""
        for key in list(self._entries):
            self.policy.record_remove(key)
        self._entries.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<NodeCacheService {self.node_name} entries={len(self)} "
                f"policy={self.policy.name} hits={self.stats.hits}>")
