"""Pure algorithms of the versioned segment tree.

Everything in this module is simulation-independent: given a BLOB descriptor
and a vectored access, these functions compute

* how the payload splits into chunk-aligned :class:`WritePiece`\\ s,
* which :class:`~repro.blobseer.metadata.nodes.LeafSegment`\\ s describe each
  touched leaf after the write (later requests of the same vector win on
  overlaps),
* the full set of new metadata nodes the write must publish (leaves plus the
  copy-on-write path up to the root — the *shadowing* of Rodeh that the paper
  cites), and
* the read plan of a versioned snapshot: which chunks (or zero ranges) supply
  every requested byte.

The BlobSeer client and the vstore vectored client feed these functions with
real payloads and charge simulated time around them; the unit tests exercise
them directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.blobseer.blob import BlobDescriptor
from repro.blobseer.chunk import ChunkKey
from repro.blobseer.metadata.nodes import ChildRef, LeafSegment, MetadataNode, NodeKey
from repro.core.listio import IOVector
from repro.core.regions import Region, RegionList
from repro.errors import InvalidRegion

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.blobseer.metadata.cache import MetadataNodeCache
    from repro.blobseer.metadata.sharedcache import NodeCacheService


# ----------------------------------------------------------------------
# write-side decomposition
# ----------------------------------------------------------------------
@dataclass
class WritePiece:
    """One chunk-aligned piece of a write request's payload.

    A piece never crosses a chunk boundary, so it becomes exactly one stored
    chunk.  ``request_index`` preserves the order of the originating
    :class:`~repro.core.listio.IORequest`\\ s so that intra-vector overlaps are
    resolved "last request wins".
    """

    leaf_offset: int
    rel_offset: int
    length: int
    data: bytes
    request_index: int
    chunk: Optional[ChunkKey] = None
    provider_id: Optional[str] = None

    @property
    def abs_offset(self) -> int:
        """Absolute byte offset of the piece in the BLOB."""
        return self.leaf_offset + self.rel_offset


def split_vector_into_pieces(blob: BlobDescriptor, vector: IOVector) -> List[WritePiece]:
    """Split a write vector into chunk-aligned pieces (one future chunk each).

    The chunk walk is inlined arithmetic (no intermediate ``Region`` objects)
    — fine-grained collective stripes split into tens of thousands of pieces,
    making this one of the hottest loops of the whole write path.
    """
    pieces: List[WritePiece] = []
    append = pieces.append
    chunk_size = blob.chunk_size
    for request_index, request in enumerate(vector):
        if not request.is_write:
            raise InvalidRegion("split_vector_into_pieces() needs a write vector")
        size = request.size
        if size == 0:
            continue
        offset = request.offset
        blob.validate_access(offset, size)
        data = request.data
        consumed = 0
        cursor = offset
        end = offset + size
        while cursor < end:
            rel = cursor % chunk_size
            piece_end = min(cursor - rel + chunk_size, end)
            length = piece_end - cursor
            append(WritePiece(
                leaf_offset=cursor - rel,
                rel_offset=rel,
                length=length,
                data=data[consumed:consumed + length],
                request_index=request_index,
            ))
            consumed += length
            cursor = piece_end
    return pieces


def overlay_segments(existing: Sequence[LeafSegment],
                     new: LeafSegment) -> List[LeafSegment]:
    """Overlay ``new`` onto ``existing`` segments of one leaf (new wins).

    Existing segments that overlap the new one are clipped (possibly split in
    two); the result stays sorted by ``rel_offset`` and non-overlapping.
    """
    result: List[LeafSegment] = []
    after: List[LeafSegment] = []
    new_start, new_end = new.rel_offset, new.rel_end
    for segment in existing:
        if segment.rel_end <= new_start:
            result.append(segment)
            continue
        if segment.rel_offset >= new_end:
            after.append(segment)
            continue
        # left survivor
        if segment.rel_offset < new_start:
            result.append(LeafSegment(
                rel_offset=segment.rel_offset,
                length=new_start - segment.rel_offset,
                chunk=segment.chunk,
                chunk_offset=segment.chunk_offset,
                provider_id=segment.provider_id,
            ))
        # right survivor (at most one: the last overlapped segment; any
        # existing segment after it starts past its end, hence past new_end)
        if segment.rel_end > new_end:
            cut = new_end - segment.rel_offset
            after.append(LeafSegment(
                rel_offset=new_end,
                length=segment.rel_end - new_end,
                chunk=segment.chunk,
                chunk_offset=segment.chunk_offset + cut,
                provider_id=segment.provider_id,
            ))
    # ``existing`` is sorted, so survivors before ``new`` landed in
    # ``result`` and survivors after it in ``after`` — concatenation is
    # already sorted, no per-overlay sort needed
    result.append(new)
    result.extend(after)
    return result


def build_leaf_segments(blob: BlobDescriptor,
                        pieces: Sequence[WritePiece]) -> Dict[int, List[LeafSegment]]:
    """Per-leaf segment lists for a set of placed (chunk/provider known) pieces."""
    by_leaf: Dict[int, List[LeafSegment]] = {}
    for piece in sorted(pieces, key=lambda p: p.request_index):
        if piece.chunk is None or piece.provider_id is None:
            raise InvalidRegion("build_leaf_segments() needs placed pieces "
                                "(chunk and provider assigned)")
        segment = LeafSegment(
            rel_offset=piece.rel_offset,
            length=piece.length,
            chunk=piece.chunk,
            chunk_offset=0,
            provider_id=piece.provider_id,
        )
        by_leaf[piece.leaf_offset] = overlay_segments(
            by_leaf.get(piece.leaf_offset, []), segment)
    return by_leaf


def leaf_pieces_for_vector(blob: BlobDescriptor, vector: IOVector) -> Dict[int, int]:
    """Map leaf offset -> bytes written into it by ``vector`` (a sizing helper)."""
    counts: Dict[int, int] = {}
    for piece in split_vector_into_pieces(blob, vector):
        counts[piece.leaf_offset] = counts.get(piece.leaf_offset, 0) + piece.length
    return counts


def build_write_metadata(blob: BlobDescriptor, version: int, base_version: int,
                         leaf_segments: Dict[int, List[LeafSegment]],
                         ) -> List[MetadataNode]:
    """All metadata nodes a write must publish for snapshot ``version``.

    The returned list contains one leaf node per touched leaf and one inner
    node per tree level on the copy-on-write paths from those leaves up to the
    root.  Untouched subtrees are shadowed through child references whose
    version hint is ``base_version``.
    """
    if not leaf_segments:
        raise InvalidRegion("a write must touch at least one leaf")
    nodes: List[MetadataNode] = []

    for leaf_offset, segments in sorted(leaf_segments.items()):
        nodes.append(MetadataNode(
            key=NodeKey(blob.blob_id, version, leaf_offset, blob.chunk_size),
            is_leaf=True,
            segments=tuple(sorted(segments, key=lambda s: s.rel_offset)),
            base_version=base_version,
        ))

    touched = set(leaf_segments.keys())
    level_size = blob.chunk_size
    while level_size < blob.capacity:
        parent_size = level_size * 2
        parents = sorted({(offset // parent_size) * parent_size for offset in touched})
        for parent_offset in parents:
            left_offset = parent_offset
            right_offset = parent_offset + level_size
            left_hint = version if left_offset in touched else base_version
            right_hint = version if right_offset in touched else base_version
            nodes.append(MetadataNode(
                key=NodeKey(blob.blob_id, version, parent_offset, parent_size),
                is_leaf=False,
                left=ChildRef(left_hint, left_offset, level_size),
                right=ChildRef(right_hint, right_offset, level_size),
            ))
        touched = set(parents)
        level_size = parent_size
    return nodes


# ----------------------------------------------------------------------
# read-side planning
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ReadExtent:
    """One resolved piece of a snapshot read.

    ``chunk is None`` means the bytes were never written at this snapshot and
    must be zero-filled.
    """

    offset: int
    length: int
    chunk: Optional[ChunkKey] = None
    chunk_offset: int = 0
    provider_id: Optional[str] = None

    @property
    def is_zero(self) -> bool:
        """True for never-written (zero-filled) extents."""
        return self.chunk is None


@dataclass
class ReadPlan:
    """Result of :func:`plan_read`: extents plus metadata-traffic accounting.

    ``nodes_fetched`` counts every node the traversal *used* (whether it came
    from the metadata store or a client-side cache); ``cache_hits`` /
    ``cache_misses`` break lookups down when a cache was consulted, and
    ``metadata_rpcs`` is filled by callers that issue real (batched) RPCs.
    """

    extents: List[ReadExtent]
    nodes_fetched: int
    levels: int
    cache_hits: int = 0
    cache_misses: int = 0
    metadata_rpcs: int = 0
    #: lookups the node-local *shared* tier answered after a private miss
    shared_hits: int = 0
    #: lookups a cooperative peer node's pool answered after both local
    #: tiers missed (:mod:`repro.blobseer.metadata.coopcache`)
    peer_hits: int = 0
    #: lookups no tier answered (shipped to the metadata providers);
    #: ``cache_hits + shared_hits + peer_hits + requests_fetched``
    #: partitions the traversal's deduplicated lookups exactly
    requests_fetched: int = 0

    def chunk_bytes(self) -> int:
        """Bytes that must be fetched from data providers."""
        return sum(extent.length for extent in self.extents if not extent.is_zero)

    def zero_bytes(self) -> int:
        """Bytes zero-filled locally."""
        return sum(extent.length for extent in self.extents if extent.is_zero)


GetNode = Callable[[int, int, int], Optional[MetadataNode]]

#: one at-or-before lookup a frontier level needs: (offset, size, version hint)
NodeRequest = Tuple[int, int, int]

GetNodes = Callable[[Sequence[NodeRequest]], Sequence[Optional[MetadataNode]]]


class ReadPlanner:
    """Level-by-level traversal of a snapshot's segment tree.

    The planner externalizes the node fetches of :func:`plan_read` so callers
    decide *how* each frontier level's lookups are satisfied: the simulated
    client groups them by metadata shard and issues one batched RPC per shard
    per level (O(levels × shards) round-trips instead of O(nodes)), while unit
    tests drive it with plain callbacks.  A :class:`MetadataNodeCache` short-
    circuits lookups whose result the client has already seen — immutable
    nodes make every cached answer permanently valid.  ``shared`` plugs a
    second, node-local tier (:class:`~repro.blobseer.metadata.sharedcache.
    NodeCacheService`) consulted on a private miss: hits there are promoted
    into the private cache, and freshly fetched results are offered back so
    co-located clients amortize one fetch across the whole node.

    Protocol::

        planner = ReadPlanner(blob, version, regions, cache=cache)
        while not planner.done:
            requests = planner.pending()          # cache misses of this level
            results = ... fetch them somehow ...  # {request: node-or-None}
            planner.advance(results)
        plan = planner.plan()

    ``trace`` (optional) collects every resolved lookup the traversal
    consumed — ``{(offset, size, hint): node-or-None}``, cache hits
    included.  The collective read path ships a resolver's trace to its peer
    ranks so their caches warm up without ever touching the metadata shards.
    """

    def __init__(self, blob: BlobDescriptor, version: int, regions: RegionList,
                 cache: Optional["MetadataNodeCache"] = None,
                 shared: Optional["NodeCacheService"] = None,
                 trace: Optional[Dict[NodeRequest,
                                      Optional[MetadataNode]]] = None):
        wanted = regions.normalized()
        for region in wanted:
            blob.validate_access(region.offset, region.size)
        self.blob = blob
        self.version = version
        self.cache = cache
        self.shared = shared
        self.trace = trace
        self.extents: List[ReadExtent] = []
        self.nodes_fetched = 0
        self.levels = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.metadata_rpcs = 0
        self.shared_hits = 0
        self.peer_hits = 0
        self.requests_fetched = 0
        # frontier entries: (offset, size, version_hint, wanted RegionList)
        self._frontier: List[Tuple[int, int, int, RegionList]] = []
        if len(wanted) > 0:
            self._frontier.append((0, blob.capacity, version, wanted))
        self._cached_level: Dict[NodeRequest, Optional[MetadataNode]] = {}
        self._pending: List[NodeRequest] = []
        self._scan_frontier()

    # ------------------------------------------------------------------
    @property
    def done(self) -> bool:
        """True once every wanted byte has been resolved to an extent."""
        return not self._frontier

    def pending(self) -> List[NodeRequest]:
        """This level's lookups that the cache could not answer (deduped)."""
        return list(self._pending)

    def advance(self, fetched: Dict[NodeRequest, Optional[MetadataNode]],
                peer_answered=frozenset()) -> None:
        """Consume one frontier level using cached plus freshly fetched nodes.

        ``peer_answered`` names the subset of this level's pending requests
        whose results came from a cooperative peer node rather than the
        authoritative shards — they count as ``peer_hits`` instead of
        ``requests_fetched`` (the partition identity stays exact), but are
        stored and re-offered exactly like fetched results.
        """
        if self.done:
            raise InvalidRegion("advance() called on a finished read plan")
        missing = [request for request in self._pending if request not in fetched]
        if missing:
            raise InvalidRegion(
                f"advance() is missing results for {missing[:3]}"
                f"{'...' if len(missing) > 3 else ''}")
        answered = sum(1 for request in self._pending
                       if request in peer_answered)
        self.peer_hits += answered
        self.requests_fetched += len(self._pending) - answered
        for request in self._pending:
            if self.cache is not None:
                self.cache.put(self.blob.blob_id, *request, fetched[request])
            if self.shared is not None:
                # offer the fresh result to the node-local tier so the next
                # co-located traversal skips the RPC; the service's
                # watermark gate decides admission
                self.shared.publish(self.blob.blob_id, *request,
                                    fetched[request])

        self.levels += 1
        next_frontier: List[Tuple[int, int, int, RegionList]] = []
        for offset, size, hint, sub_wanted in self._frontier:
            request = (offset, size, hint)
            if request in self._cached_level:
                node = self._cached_level[request]
            else:
                node = fetched[request]
            if self.trace is not None:
                self.trace[request] = node
            if node is None:
                for region in sub_wanted:
                    self.extents.append(ReadExtent(region.offset, region.size))
                continue
            self.nodes_fetched += 1
            if node.is_leaf:
                leaf_extents, leftover = _resolve_leaf(node, offset, sub_wanted)
                self.extents.extend(leaf_extents)
                if len(leftover) > 0:
                    if node.base_version is None:
                        for region in leftover:
                            self.extents.append(
                                ReadExtent(region.offset, region.size))
                    else:
                        next_frontier.append((offset, size, node.base_version,
                                              leftover))
            else:
                for child in (node.left, node.right):
                    child_region = Region(child.offset, child.size)
                    child_wanted = sub_wanted.clip(child_region)
                    if len(child_wanted) > 0:
                        next_frontier.append((child.offset, child.size,
                                              child.version_hint, child_wanted))
        self._frontier = next_frontier
        self._scan_frontier()

    def plan(self) -> ReadPlan:
        """The finished plan (extents sorted by file offset)."""
        if not self.done:
            raise InvalidRegion("plan() called before the traversal finished")
        self.extents.sort(key=lambda extent: extent.offset)
        return ReadPlan(extents=self.extents, nodes_fetched=self.nodes_fetched,
                        levels=self.levels, cache_hits=self.cache_hits,
                        cache_misses=self.cache_misses,
                        metadata_rpcs=self.metadata_rpcs,
                        shared_hits=self.shared_hits,
                        peer_hits=self.peer_hits,
                        requests_fetched=self.requests_fetched)

    # ------------------------------------------------------------------
    def _scan_frontier(self) -> None:
        """Split the new frontier's lookups into cache hits and pending misses."""
        self._cached_level = {}
        self._pending = []
        seen: set = set()
        for offset, size, hint, _ in self._frontier:
            request = (offset, size, hint)
            if request in seen:
                continue
            seen.add(request)
            if self.cache is not None:
                found, node = self.cache.get(self.blob.blob_id, offset, size, hint)
                if found:
                    self._cached_level[request] = node
                    self.cache_hits += 1
                    continue
                self.cache_misses += 1
            if self.shared is not None:
                # second tier: the node-local shared pool a co-located rank
                # may already have filled.  A shared hit is promoted into
                # the private cache so this client's repeats stay local.
                found, node = self.shared.get(self.blob.blob_id, offset,
                                              size, hint)
                if found:
                    self._cached_level[request] = node
                    self.shared_hits += 1
                    if self.cache is not None:
                        self.cache.put(self.blob.blob_id, offset, size, hint,
                                       node)
                    continue
            self._pending.append(request)


def plan_read(blob: BlobDescriptor, version: int, regions: RegionList,
              get_node: Optional[GetNode] = None, *,
              get_nodes: Optional[GetNodes] = None,
              cache: Optional["MetadataNodeCache"] = None) -> ReadPlan:
    """Resolve which chunks supply every byte of ``regions`` at ``version``.

    Parameters
    ----------
    get_node:
        Callback ``(offset, size, version_hint) -> MetadataNode | None``
        implementing one at-or-before lookup (``None`` = range never written
        as of that version, i.e. zero-filled).
    get_nodes:
        Batched alternative: ``[(offset, size, hint), ...] -> [node | None,
        ...]`` answering one whole frontier level at a time (results aligned
        with the requests).  Exactly one of ``get_node`` / ``get_nodes`` must
        be given; ``metadata_rpcs`` then counts callback invocations (one per
        level) for the batched form and one per lookup for the scalar form.
    cache:
        Optional :class:`MetadataNodeCache`; lookups it answers are not
        forwarded to the callback, and every fetched result is inserted.

    The traversal proceeds level by level from the root; shadowed subtrees are
    followed through their version hints, and partially-covered leaves recurse
    into their base version — the mechanism that makes every published
    snapshot a complete, immutable image.
    """
    if (get_node is None) == (get_nodes is None):
        raise InvalidRegion("plan_read() needs exactly one of get_node/get_nodes")
    planner = ReadPlanner(blob, version, regions, cache=cache)
    while not planner.done:
        requests = planner.pending()
        results: Dict[NodeRequest, Optional[MetadataNode]] = {}
        if requests:
            if get_nodes is not None:
                nodes = list(get_nodes(requests))
                if len(nodes) != len(requests):
                    raise InvalidRegion(
                        f"get_nodes returned {len(nodes)} results for "
                        f"{len(requests)} requests")
                results = dict(zip(requests, nodes))
                planner.metadata_rpcs += 1
            else:
                for request in requests:
                    results[request] = get_node(*request)
                    planner.metadata_rpcs += 1
        planner.advance(results)
    return planner.plan()


def _resolve_leaf(node: MetadataNode, leaf_offset: int, wanted: RegionList,
                  ) -> Tuple[List[ReadExtent], RegionList]:
    """Map wanted bytes of one leaf onto its segments; return leftovers.

    ``wanted`` is normalized and ``node.segments`` is sorted and disjoint, so
    one synchronized sweep resolves everything in O(|wanted| + |segments|) —
    the covered regions and the leftover holes fall out of the same pass with
    no intermediate subtraction.
    """
    extents: List[ReadExtent] = []
    leftover: List[Region] = []
    segments = node.segments
    count = len(segments)
    base = 0  # first segment that may still overlap the current region
    for region in wanted:
        cursor = region.offset
        end = region.end
        while base < count and leaf_offset + segments[base].rel_end <= cursor:
            base += 1
        index = base
        while cursor < end and index < count:
            segment = segments[index]
            seg_start = leaf_offset + segment.rel_offset
            seg_end = leaf_offset + segment.rel_end
            if seg_start >= end:
                break
            if seg_start > cursor:
                leftover.append(Region(cursor, seg_start - cursor))
                cursor = seg_start
            take_end = min(seg_end, end)
            if take_end > cursor:
                delta = cursor - seg_start
                extents.append(ReadExtent(
                    offset=cursor,
                    length=take_end - cursor,
                    chunk=segment.chunk,
                    chunk_offset=segment.chunk_offset + delta,
                    provider_id=segment.provider_id,
                ))
                cursor = take_end
            if seg_end <= end:
                index += 1
            else:
                break
        if cursor < end:
            leftover.append(Region(cursor, end - cursor))
    return extents, RegionList._from_normalized(leftover)
