"""Pure algorithms of the versioned segment tree.

Everything in this module is simulation-independent: given a BLOB descriptor
and a vectored access, these functions compute

* how the payload splits into chunk-aligned :class:`WritePiece`\\ s,
* which :class:`~repro.blobseer.metadata.nodes.LeafSegment`\\ s describe each
  touched leaf after the write (later requests of the same vector win on
  overlaps),
* the full set of new metadata nodes the write must publish (leaves plus the
  copy-on-write path up to the root — the *shadowing* of Rodeh that the paper
  cites), and
* the read plan of a versioned snapshot: which chunks (or zero ranges) supply
  every requested byte.

The BlobSeer client and the vstore vectored client feed these functions with
real payloads and charge simulated time around them; the unit tests exercise
them directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.blobseer.blob import BlobDescriptor
from repro.blobseer.chunk import ChunkKey
from repro.blobseer.metadata.nodes import ChildRef, LeafSegment, MetadataNode, NodeKey
from repro.core.listio import IOVector
from repro.core.regions import Region, RegionList
from repro.errors import InvalidRegion


# ----------------------------------------------------------------------
# write-side decomposition
# ----------------------------------------------------------------------
@dataclass
class WritePiece:
    """One chunk-aligned piece of a write request's payload.

    A piece never crosses a chunk boundary, so it becomes exactly one stored
    chunk.  ``request_index`` preserves the order of the originating
    :class:`~repro.core.listio.IORequest`\\ s so that intra-vector overlaps are
    resolved "last request wins".
    """

    leaf_offset: int
    rel_offset: int
    length: int
    data: bytes
    request_index: int
    chunk: Optional[ChunkKey] = None
    provider_id: Optional[str] = None

    @property
    def abs_offset(self) -> int:
        """Absolute byte offset of the piece in the BLOB."""
        return self.leaf_offset + self.rel_offset


def split_vector_into_pieces(blob: BlobDescriptor, vector: IOVector) -> List[WritePiece]:
    """Split a write vector into chunk-aligned pieces (one future chunk each)."""
    pieces: List[WritePiece] = []
    for request_index, request in enumerate(vector):
        if not request.is_write:
            raise InvalidRegion("split_vector_into_pieces() needs a write vector")
        if request.size == 0:
            continue
        blob.validate_access(request.offset, request.size)
        consumed = 0
        for piece_region in request.region.chunk_aligned_pieces(blob.chunk_size):
            payload = request.data[consumed:consumed + piece_region.size]
            pieces.append(WritePiece(
                leaf_offset=blob.leaf_offset(piece_region.offset),
                rel_offset=piece_region.offset % blob.chunk_size,
                length=piece_region.size,
                data=payload,
                request_index=request_index,
            ))
            consumed += piece_region.size
    return pieces


def overlay_segments(existing: Sequence[LeafSegment],
                     new: LeafSegment) -> List[LeafSegment]:
    """Overlay ``new`` onto ``existing`` segments of one leaf (new wins).

    Existing segments that overlap the new one are clipped (possibly split in
    two); the result stays sorted by ``rel_offset`` and non-overlapping.
    """
    result: List[LeafSegment] = []
    new_start, new_end = new.rel_offset, new.rel_end
    for segment in existing:
        if segment.rel_end <= new_start or segment.rel_offset >= new_end:
            result.append(segment)
            continue
        # left survivor
        if segment.rel_offset < new_start:
            result.append(LeafSegment(
                rel_offset=segment.rel_offset,
                length=new_start - segment.rel_offset,
                chunk=segment.chunk,
                chunk_offset=segment.chunk_offset,
                provider_id=segment.provider_id,
            ))
        # right survivor
        if segment.rel_end > new_end:
            cut = new_end - segment.rel_offset
            result.append(LeafSegment(
                rel_offset=new_end,
                length=segment.rel_end - new_end,
                chunk=segment.chunk,
                chunk_offset=segment.chunk_offset + cut,
                provider_id=segment.provider_id,
            ))
    result.append(new)
    result.sort(key=lambda segment: segment.rel_offset)
    return result


def build_leaf_segments(blob: BlobDescriptor,
                        pieces: Sequence[WritePiece]) -> Dict[int, List[LeafSegment]]:
    """Per-leaf segment lists for a set of placed (chunk/provider known) pieces."""
    by_leaf: Dict[int, List[LeafSegment]] = {}
    for piece in sorted(pieces, key=lambda p: p.request_index):
        if piece.chunk is None or piece.provider_id is None:
            raise InvalidRegion("build_leaf_segments() needs placed pieces "
                                "(chunk and provider assigned)")
        segment = LeafSegment(
            rel_offset=piece.rel_offset,
            length=piece.length,
            chunk=piece.chunk,
            chunk_offset=0,
            provider_id=piece.provider_id,
        )
        by_leaf[piece.leaf_offset] = overlay_segments(
            by_leaf.get(piece.leaf_offset, []), segment)
    return by_leaf


def leaf_pieces_for_vector(blob: BlobDescriptor, vector: IOVector) -> Dict[int, int]:
    """Map leaf offset -> bytes written into it by ``vector`` (a sizing helper)."""
    counts: Dict[int, int] = {}
    for piece in split_vector_into_pieces(blob, vector):
        counts[piece.leaf_offset] = counts.get(piece.leaf_offset, 0) + piece.length
    return counts


def build_write_metadata(blob: BlobDescriptor, version: int, base_version: int,
                         leaf_segments: Dict[int, List[LeafSegment]],
                         ) -> List[MetadataNode]:
    """All metadata nodes a write must publish for snapshot ``version``.

    The returned list contains one leaf node per touched leaf and one inner
    node per tree level on the copy-on-write paths from those leaves up to the
    root.  Untouched subtrees are shadowed through child references whose
    version hint is ``base_version``.
    """
    if not leaf_segments:
        raise InvalidRegion("a write must touch at least one leaf")
    nodes: List[MetadataNode] = []

    for leaf_offset, segments in sorted(leaf_segments.items()):
        nodes.append(MetadataNode(
            key=NodeKey(blob.blob_id, version, leaf_offset, blob.chunk_size),
            is_leaf=True,
            segments=tuple(sorted(segments, key=lambda s: s.rel_offset)),
            base_version=base_version,
        ))

    touched = set(leaf_segments.keys())
    level_size = blob.chunk_size
    while level_size < blob.capacity:
        parent_size = level_size * 2
        parents = sorted({(offset // parent_size) * parent_size for offset in touched})
        for parent_offset in parents:
            left_offset = parent_offset
            right_offset = parent_offset + level_size
            left_hint = version if left_offset in touched else base_version
            right_hint = version if right_offset in touched else base_version
            nodes.append(MetadataNode(
                key=NodeKey(blob.blob_id, version, parent_offset, parent_size),
                is_leaf=False,
                left=ChildRef(left_hint, left_offset, level_size),
                right=ChildRef(right_hint, right_offset, level_size),
            ))
        touched = set(parents)
        level_size = parent_size
    return nodes


# ----------------------------------------------------------------------
# read-side planning
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ReadExtent:
    """One resolved piece of a snapshot read.

    ``chunk is None`` means the bytes were never written at this snapshot and
    must be zero-filled.
    """

    offset: int
    length: int
    chunk: Optional[ChunkKey] = None
    chunk_offset: int = 0
    provider_id: Optional[str] = None

    @property
    def is_zero(self) -> bool:
        """True for never-written (zero-filled) extents."""
        return self.chunk is None


@dataclass
class ReadPlan:
    """Result of :func:`plan_read`: extents plus metadata-traffic accounting."""

    extents: List[ReadExtent]
    nodes_fetched: int
    levels: int

    def chunk_bytes(self) -> int:
        """Bytes that must be fetched from data providers."""
        return sum(extent.length for extent in self.extents if not extent.is_zero)

    def zero_bytes(self) -> int:
        """Bytes zero-filled locally."""
        return sum(extent.length for extent in self.extents if extent.is_zero)


GetNode = Callable[[int, int, int], Optional[MetadataNode]]


def plan_read(blob: BlobDescriptor, version: int, regions: RegionList,
              get_node: GetNode) -> ReadPlan:
    """Resolve which chunks supply every byte of ``regions`` at ``version``.

    Parameters
    ----------
    get_node:
        Callback ``(offset, size, version_hint) -> MetadataNode | None``
        implementing the at-or-before lookup (``None`` = range never written
        as of that version, i.e. zero-filled).

    The traversal proceeds level by level from the root; shadowed subtrees are
    followed through their version hints, and partially-covered leaves recurse
    into their base version — the mechanism that makes every published
    snapshot a complete, immutable image.
    """
    wanted = regions.normalized()
    for region in wanted:
        blob.validate_access(region.offset, region.size)
    if len(wanted) == 0:
        return ReadPlan(extents=[], nodes_fetched=0, levels=0)

    extents: List[ReadExtent] = []
    nodes_fetched = 0
    levels = 0
    # frontier entries: (offset, size, version_hint, wanted RegionList)
    frontier: List[Tuple[int, int, int, RegionList]] = [
        (0, blob.capacity, version, wanted)
    ]

    while frontier:
        levels += 1
        next_frontier: List[Tuple[int, int, int, RegionList]] = []
        for offset, size, hint, sub_wanted in frontier:
            node = get_node(offset, size, hint)
            if node is not None:
                nodes_fetched += 1
            if node is None:
                for region in sub_wanted:
                    extents.append(ReadExtent(region.offset, region.size))
                continue
            if node.is_leaf:
                leaf_extents, leftover = _resolve_leaf(node, offset, sub_wanted)
                extents.extend(leaf_extents)
                if len(leftover) > 0:
                    if node.base_version is None:
                        for region in leftover:
                            extents.append(ReadExtent(region.offset, region.size))
                    else:
                        next_frontier.append((offset, size, node.base_version,
                                              leftover))
            else:
                for child in (node.left, node.right):
                    child_region = Region(child.offset, child.size)
                    child_wanted = sub_wanted.clip(child_region)
                    if len(child_wanted) > 0:
                        next_frontier.append((child.offset, child.size,
                                              child.version_hint, child_wanted))
        frontier = next_frontier

    extents.sort(key=lambda extent: extent.offset)
    return ReadPlan(extents=extents, nodes_fetched=nodes_fetched, levels=levels)


def _resolve_leaf(node: MetadataNode, leaf_offset: int, wanted: RegionList,
                  ) -> Tuple[List[ReadExtent], RegionList]:
    """Map wanted bytes of one leaf onto its segments; return leftovers."""
    extents: List[ReadExtent] = []
    covered: List[Region] = []
    for segment in node.segments:
        seg_region = Region(leaf_offset + segment.rel_offset, segment.length)
        for region in wanted:
            overlap = region.intersect(seg_region)
            if overlap.empty:
                continue
            delta = overlap.offset - seg_region.offset
            extents.append(ReadExtent(
                offset=overlap.offset,
                length=overlap.size,
                chunk=segment.chunk,
                chunk_offset=segment.chunk_offset + delta,
                provider_id=segment.provider_id,
            ))
            covered.append(overlap)
    leftover = wanted.subtract(RegionList(covered))
    return extents, leftover
