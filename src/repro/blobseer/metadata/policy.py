"""Pluggable eviction policies for the node-local shared metadata cache.

A policy never stores cache values — it only tracks *ordering* metadata for
the keys the owning cache holds and answers one question: which entry should
leave when the cache is over capacity.  Keys are the at-or-before lookup
tuples ``(blob id, offset, size, version hint)`` of
:mod:`repro.blobseer.metadata.cache`; the ``size`` component is the byte
span of the tree node the entry resolves, which is what makes *level-aware*
policies possible without ever deserializing a node:

* the root of a BLOB's segment tree spans the whole capacity,
* each level halves the span,
* so ``log2(root_span / size)`` is the entry's depth from the top.

Three policies ship:

``lru``
    Plain least-recently-used over all entries (hits refresh recency).

``slru`` (alias ``2q``)
    Segmented LRU: new entries enter a *probationary* segment; a hit
    promotes to the *protected* segment.  Victims come from the
    probationary side first, so one streaming scan cannot flush entries
    that have proven reuse — the classic 2Q/SLRU scan resistance.

``level`` / ``level:K``
    Level-aware: the top ``K`` tree levels (root = level 0) are *pinned* —
    every traversal of the BLOB passes through them, so they are the
    highest-value entries a shared cache can hold — and victims are chosen
    deepest-level-first (leaves before inner nodes), LRU within a level.
    When every entry is pinned and the cache is still over capacity the
    policy degrades to plain LRU over the pinned set rather than refusing
    to make room (documented, counted by the owning cache's stats).

:func:`make_policy` builds a policy from a spec string so cluster configs
and benchmark sweeps can name policies declaratively.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.errors import StorageError

#: cache key of one at-or-before lookup (shared with MetadataNodeCache)
HintKey = Tuple[str, int, int, int]

#: default number of pinned top levels of the level-aware policy
DEFAULT_PIN_LEVELS = 3


class EvictionPolicy:
    """Interface every eviction policy implements.

    The owning cache calls :meth:`record_insert` / :meth:`record_hit` /
    :meth:`record_remove` to mirror its entry set, and :meth:`select_victim`
    when it must shed one entry.  A policy must return a key it was told
    about (and not yet told to remove); the cache performs the removal and
    reports it back through :meth:`record_remove`.
    """

    name = "abstract"

    def record_insert(self, key: HintKey) -> None:
        raise NotImplementedError

    def record_hit(self, key: HintKey) -> None:
        raise NotImplementedError

    def record_peek(self, key: HintKey) -> None:
        """A remote peer probe observed ``key`` (stat-free lookup path).

        A cooperative-tier hit is as strong a reuse signal as a local one,
        so the default refreshes recency exactly like :meth:`record_hit`;
        policies that want to weigh remote interest differently override
        this.
        """
        self.record_hit(key)

    def record_remove(self, key: HintKey) -> None:
        raise NotImplementedError

    def select_victim(self) -> Optional[HintKey]:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__}>"


class LRUPolicy(EvictionPolicy):
    """Plain least-recently-used ordering over every entry."""

    name = "lru"

    def __init__(self):
        # insertion order doubles as recency order (move-to-end on hit)
        self._order: Dict[HintKey, None] = {}

    def __len__(self) -> int:
        return len(self._order)

    def record_insert(self, key: HintKey) -> None:
        self._order.pop(key, None)
        self._order[key] = None

    def record_hit(self, key: HintKey) -> None:
        if key in self._order:
            del self._order[key]
            self._order[key] = None

    def record_remove(self, key: HintKey) -> None:
        self._order.pop(key, None)

    def select_victim(self) -> Optional[HintKey]:
        return next(iter(self._order), None)


class SegmentedLRUPolicy(EvictionPolicy):
    """2Q-style segmented LRU: probationary until a hit proves reuse.

    ``protected_fraction`` bounds the protected segment relative to the
    total entry count; when promotion overfills it, the protected LRU entry
    is demoted back to the probationary side (not evicted), as in classic
    SLRU.
    """

    name = "slru"

    def __init__(self, protected_fraction: float = 0.5):
        if not 0.0 < protected_fraction < 1.0:
            raise StorageError(
                f"protected_fraction must be in (0, 1), got {protected_fraction}")
        self.protected_fraction = protected_fraction
        self._probation: Dict[HintKey, None] = {}
        self._protected: Dict[HintKey, None] = {}

    def __len__(self) -> int:
        return len(self._probation) + len(self._protected)

    def record_insert(self, key: HintKey) -> None:
        if key in self._protected:
            # overwrite of a proven entry keeps its protection, refreshed
            del self._protected[key]
            self._protected[key] = None
            return
        self._probation.pop(key, None)
        self._probation[key] = None

    def record_hit(self, key: HintKey) -> None:
        if key in self._protected:
            del self._protected[key]
            self._protected[key] = None
            return
        if key not in self._probation:
            return
        del self._probation[key]
        self._protected[key] = None
        # keep the protected segment bounded: demote its LRU entry
        limit = max(1, int(len(self) * self.protected_fraction))
        while len(self._protected) > limit:
            demoted = next(iter(self._protected))
            del self._protected[demoted]
            self._probation[demoted] = None

    def record_remove(self, key: HintKey) -> None:
        self._probation.pop(key, None)
        self._protected.pop(key, None)

    def select_victim(self) -> Optional[HintKey]:
        victim = next(iter(self._probation), None)
        if victim is not None:
            return victim
        return next(iter(self._protected), None)


class LevelAwarePolicy(EvictionPolicy):
    """Pin the top ``pin_levels`` tree levels; evict deepest-first.

    Every read of a BLOB traverses the same upper tree nodes, so a shared
    cache earns the most from keeping them resident.  The policy learns each
    BLOB's root span as the largest node span it observes (the root is the
    first node any traversal resolves, so the estimate is exact from the
    first insert) and pins every entry within ``pin_levels`` levels of it.
    Unpinned entries are evicted deepest level first — leaves stream through
    without ever displacing the shared upper levels — falling back to plain
    LRU over the pinned set only when nothing else is left.
    """

    name = "level"

    def __init__(self, pin_levels: int = DEFAULT_PIN_LEVELS):
        if pin_levels < 1:
            raise StorageError(f"pin_levels must be >= 1, got {pin_levels}")
        self.pin_levels = pin_levels
        self._order: Dict[HintKey, None] = {}
        #: largest node span seen per BLOB (== the root span once the root
        #: has been observed, which every traversal resolves first)
        self._root_span: Dict[str, int] = {}

    def __len__(self) -> int:
        return len(self._order)

    # ------------------------------------------------------------------
    def pinned(self, key: HintKey) -> bool:
        """Whether ``key`` sits within the pinned top levels of its BLOB."""
        blob_id, _offset, size, _hint = key
        root_span = self._root_span.get(blob_id, 0)
        if size <= 0 or root_span <= 0:
            return False
        # level 0 = root; pinned iff level < pin_levels, i.e. the span is
        # within pin_levels-1 halvings of the root span
        return size << (self.pin_levels - 1) >= root_span

    def _observe_span(self, key: HintKey) -> None:
        blob_id, _offset, size, _hint = key
        if size > self._root_span.get(blob_id, 0):
            self._root_span[blob_id] = size

    # ------------------------------------------------------------------
    def record_insert(self, key: HintKey) -> None:
        self._observe_span(key)
        self._order.pop(key, None)
        self._order[key] = None

    def record_hit(self, key: HintKey) -> None:
        if key in self._order:
            del self._order[key]
            self._order[key] = None

    def record_remove(self, key: HintKey) -> None:
        self._order.pop(key, None)

    def select_victim(self) -> Optional[HintKey]:
        victim: Optional[HintKey] = None
        victim_span = None
        fallback: Optional[HintKey] = None
        for key in self._order:  # LRU -> MRU
            if fallback is None:
                fallback = key
            if self.pinned(key):
                continue
            span = key[2]
            # smallest span = deepest level; LRU breaks ties (first seen in
            # recency order wins, and we only replace on strictly deeper)
            if victim is None or span < victim_span:
                victim, victim_span = key, span
        return victim if victim is not None else fallback


#: policy constructors by spec name
POLICIES = {
    "lru": LRUPolicy,
    "slru": SegmentedLRUPolicy,
    "2q": SegmentedLRUPolicy,
    "level": LevelAwarePolicy,
}


def make_policy(spec) -> EvictionPolicy:
    """Build an eviction policy from a spec.

    ``spec`` is either an :class:`EvictionPolicy` instance (returned as-is),
    or a string: ``"lru"``, ``"slru"`` (alias ``"2q"``), ``"level"`` or
    ``"level:K"`` with ``K`` pinned top levels.
    """
    if isinstance(spec, EvictionPolicy):
        return spec
    if not isinstance(spec, str):
        raise StorageError(f"policy spec must be a string, got {spec!r}")
    name, _, argument = spec.partition(":")
    name = name.strip().lower()
    if name not in POLICIES:
        raise StorageError(
            f"unknown eviction policy {spec!r}; choose from {sorted(POLICIES)}")
    if not argument:
        return POLICIES[name]()
    if name != "level":
        raise StorageError(f"policy {name!r} takes no argument, got {spec!r}")
    try:
        pin_levels = int(argument)
    except ValueError:
        raise StorageError(f"bad pin level count in {spec!r}") from None
    return LevelAwarePolicy(pin_levels=pin_levels)
