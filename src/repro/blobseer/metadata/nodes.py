"""Value types of the versioned segment tree."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.blobseer.chunk import ChunkKey
from repro.errors import InvalidRegion


@dataclass(frozen=True, order=True)
class NodeKey:
    """Identity of one immutable metadata node."""

    blob_id: str
    version: int
    offset: int
    size: int

    @property
    def range_key(self) -> Tuple[str, int, int]:
        """The version-independent part (used by at-or-before lookups)."""
        return (self.blob_id, self.offset, self.size)


@dataclass(frozen=True)
class ChildRef:
    """Reference from an inner node to one of its children.

    ``version_hint`` is the snapshot version as of which the child subtree
    must be interpreted: the write's own version for subtrees it touched, the
    write's base version for shadowed (untouched) subtrees.  The reference is
    resolved with an at-or-before lookup, because the base snapshot itself may
    have inherited that subtree from an even older version.
    """

    version_hint: int
    offset: int
    size: int


@dataclass(frozen=True)
class LeafSegment:
    """One piece of a leaf's content, backed by a stored chunk.

    Attributes
    ----------
    rel_offset:
        Offset of the piece relative to the start of the leaf's byte range.
    length:
        Length of the piece in bytes.
    chunk:
        Key of the chunk holding the bytes.
    chunk_offset:
        Offset of the piece inside the chunk payload (pieces written by one
        request share a chunk when they fall in the same leaf).
    provider_id:
        The data provider holding the chunk (kept in metadata so readers know
        where to fetch from, exactly as BlobSeer's metadata does).
    """

    rel_offset: int
    length: int
    chunk: ChunkKey
    chunk_offset: int
    provider_id: str

    def __post_init__(self) -> None:
        if self.rel_offset < 0 or self.length <= 0 or self.chunk_offset < 0:
            raise InvalidRegion(
                f"invalid leaf segment ({self.rel_offset}, {self.length}, "
                f"chunk_offset={self.chunk_offset})")
        # precomputed plain attribute (not a property): ``rel_end`` is read
        # on every overlay/resolve sweep step, where descriptor overhead
        # alone is measurable
        object.__setattr__(self, "rel_end", self.rel_offset + self.length)

    #: first byte after the piece (relative to the leaf start); set in
    #: ``__post_init__``, annotated here for introspection only
    rel_end: int = field(init=False, compare=False, repr=False, default=0)


@dataclass(frozen=True)
class MetadataNode:
    """One immutable node of the versioned segment tree.

    Leaves (``is_leaf=True``) carry ``segments`` (the pieces written at this
    version, sorted and non-overlapping) and ``base_version`` — the snapshot
    from which any byte *not* covered by the segments must be resolved
    (``None`` means "never written before: zero-filled").

    Inner nodes carry ``left`` / ``right`` child references.
    """

    key: NodeKey
    is_leaf: bool
    segments: Tuple[LeafSegment, ...] = field(default=())
    base_version: Optional[int] = None
    left: Optional[ChildRef] = None
    right: Optional[ChildRef] = None

    def __post_init__(self) -> None:
        if self.is_leaf:
            if self.left is not None or self.right is not None:
                raise InvalidRegion("leaf nodes cannot have children")
            previous_end = 0
            for segment in self.segments:
                if segment.rel_offset < previous_end:
                    raise InvalidRegion("leaf segments must be sorted and disjoint")
                if segment.rel_end > self.key.size:
                    raise InvalidRegion("leaf segment exceeds the leaf range")
                previous_end = segment.rel_end
        else:
            if self.segments:
                raise InvalidRegion("inner nodes cannot carry segments")
            if self.left is None or self.right is None:
                raise InvalidRegion("inner nodes need both children")

    @property
    def covered(self) -> int:
        """Bytes of the leaf covered by this version's own segments."""
        return sum(segment.length for segment in self.segments)
