"""Metadata node store with at-or-before version resolution.

The store maps the *range key* ``(blob id, offset, size)`` to the list of
versions that created a node for that range.  The central query —
:meth:`MetadataStore.get_at_or_before` — returns the newest node of a range
whose version does not exceed the requested snapshot, which is how shadowed
(untouched) subtrees are resolved during versioned reads.

:class:`PartitionedMetadataStore` spreads range keys over several shards by
hashing, mirroring BlobSeer's DHT-organized metadata providers; the client
uses the partition map to know which metadata provider to contact for each
node, and the simulation charges one RPC per node accordingly.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Optional, Sequence, Tuple

from repro.blobseer.metadata.nodes import MetadataNode, NodeKey
from repro.errors import VersionNotFound


RangeKey = Tuple[str, int, int]


class MetadataStore:
    """One shard of versioned metadata nodes."""

    def __init__(self, store_id: str = "metadata0"):
        self.store_id = store_id
        # range key -> parallel lists (sorted versions, nodes)
        self._versions: Dict[RangeKey, List[int]] = {}
        self._nodes: Dict[RangeKey, List[MetadataNode]] = {}
        self.nodes_written: int = 0
        self.nodes_read: int = 0

    # ------------------------------------------------------------------
    def put_node(self, node: MetadataNode) -> None:
        """Insert an immutable node (idempotent for identical re-puts)."""
        range_key = node.key.range_key
        versions = self._versions.setdefault(range_key, [])
        nodes = self._nodes.setdefault(range_key, [])
        index = bisect.bisect_left(versions, node.key.version)
        if index < len(versions) and versions[index] == node.key.version:
            # Same node written twice (e.g. a retried RPC): keep the first.
            return
        versions.insert(index, node.key.version)
        nodes.insert(index, node)
        self.nodes_written += 1

    def remove_node(self, key: NodeKey) -> bool:
        """Remove the node with exactly this key (rollback of failed writes).

        Aborting a write whose ``put_nodes`` partially succeeded must erase
        the stored subset, or later snapshots' at-or-before lookups would
        resolve into a torn version.  Returns whether a node was removed.
        """
        range_key = key.range_key
        versions = self._versions.get(range_key)
        if not versions:
            return False
        index = bisect.bisect_left(versions, key.version)
        if index >= len(versions) or versions[index] != key.version:
            return False
        versions.pop(index)
        self._nodes[range_key].pop(index)
        if not versions:
            del self._versions[range_key]
            del self._nodes[range_key]
        return True

    def remove_nodes(self, keys: Sequence[NodeKey]) -> int:
        """Remove a batch of exact keys; returns how many existed."""
        return sum(1 for key in keys if self.remove_node(key))

    def get_at_or_before(self, blob_id: str, offset: int, size: int,
                         version: int) -> Optional[MetadataNode]:
        """Newest node for ``(offset, size)`` with version <= ``version``."""
        range_key = (blob_id, offset, size)
        versions = self._versions.get(range_key)
        if not versions:
            return None
        index = bisect.bisect_right(versions, version)
        if index == 0:
            return None
        self.nodes_read += 1
        return self._nodes[range_key][index - 1]

    def get_nodes(self, blob_id: str,
                  requests: Sequence[Tuple[int, int, int]],
                  ) -> List[Optional[MetadataNode]]:
        """Batched at-or-before lookups: one ``(offset, size, hint)`` each.

        The result list is aligned with ``requests``.  This is the store-side
        half of the per-level batched fetch: a reading client ships one whole
        frontier level's lookups for this shard in a single RPC instead of one
        RPC per node.
        """
        return [self.get_at_or_before(blob_id, offset, size, hint)
                for offset, size, hint in requests]

    def prefetch_candidates(self, blob_id: str,
                            nodes: Sequence[Optional[MetadataNode]],
                            owns=None) -> List[Tuple[Tuple[int, int, int],
                                                     Optional[MetadataNode]]]:
        """Speculative follow-up lookups for a batch of resolved nodes.

        For each resolved *inner* node, the lookups its traversal will issue
        next are its two child references; for a *leaf* with a base version,
        it is the at-or-before lookup of that base version (same range key,
        so always this shard).  Only lookups this shard can answer
        *authoritatively* are included: ``owns(offset, size)`` must confirm
        the range key hashes here, because a miss in this shard's map for a
        foreign key means "stored elsewhere", not "never written" — shipping
        it as a negative entry would poison every cache it lands in.

        Returns deduplicated ``((offset, size, hint), node-or-None)`` pairs.
        """
        extras: Dict[Tuple[int, int, int], Optional[MetadataNode]] = {}
        for node in nodes:
            if node is None:
                continue
            if node.is_leaf:
                if node.base_version is None:
                    continue
                candidates = [(node.key.offset, node.key.size,
                               node.base_version)]
            else:
                candidates = [(child.offset, child.size, child.version_hint)
                              for child in (node.left, node.right)]
            for offset, size, hint in candidates:
                if owns is not None and not owns(offset, size):
                    continue
                request = (offset, size, hint)
                if request not in extras:
                    extras[request] = self.get_at_or_before(blob_id, offset,
                                                            size, hint)
        return list(extras.items())

    def get_exact(self, key: NodeKey) -> MetadataNode:
        """Node with exactly this key (raises if absent)."""
        node = self.get_at_or_before(key.blob_id, key.offset, key.size, key.version)
        if node is None or node.key.version != key.version:
            raise VersionNotFound(f"no metadata node {key}")
        return node

    def node_count(self) -> int:
        """Total nodes held by this shard."""
        return sum(len(nodes) for nodes in self._nodes.values())


class PartitionedMetadataStore:
    """Hash-partitioned view over several metadata shards.

    The same class serves two purposes: in *direct* use it is simply a store
    spread over ``shards``; in the simulated deployment each shard lives
    inside one metadata provider service, and the partitioning function below
    is shared by the client to route node reads/writes to the right provider.
    """

    def __init__(self, shards: List[MetadataStore]):
        if not shards:
            raise ValueError("at least one metadata shard is required")
        self.shards = list(shards)

    @staticmethod
    def partition_index(blob_id: str, offset: int, size: int, shard_count: int) -> int:
        """Stable shard index for a range key."""
        digest = hashlib.sha256(f"{blob_id}:{offset}:{size}".encode()).digest()
        return int.from_bytes(digest[:4], "little") % shard_count

    def shard_for(self, blob_id: str, offset: int, size: int) -> MetadataStore:
        """The shard responsible for a range key."""
        index = self.partition_index(blob_id, offset, size, len(self.shards))
        return self.shards[index]

    # ------------------------------------------------------------------
    def put_node(self, node: MetadataNode) -> None:
        """Route the node to its shard."""
        self.shard_for(*node.key.range_key).put_node(node)

    def get_at_or_before(self, blob_id: str, offset: int, size: int,
                         version: int) -> Optional[MetadataNode]:
        """At-or-before lookup routed to the responsible shard."""
        return self.shard_for(blob_id, offset, size).get_at_or_before(
            blob_id, offset, size, version)

    def get_nodes(self, blob_id: str,
                  requests: Sequence[Tuple[int, int, int]],
                  ) -> List[Optional[MetadataNode]]:
        """Batched at-or-before lookups, each routed to its shard."""
        return [self.get_at_or_before(blob_id, offset, size, hint)
                for offset, size, hint in requests]

    def group_by_shard(self, blob_id: str,
                       requests: Sequence[Tuple[int, int, int]],
                       ) -> Dict[int, List[Tuple[int, int, int]]]:
        """Partition lookups by responsible shard index (request order kept).

        Shared by the simulated client so that one frontier level becomes one
        batched RPC per shard.
        """
        by_shard: Dict[int, List[Tuple[int, int, int]]] = {}
        shard_count = len(self.shards)
        for request in requests:
            offset, size, _ = request
            index = self.partition_index(blob_id, offset, size, shard_count)
            by_shard.setdefault(index, []).append(request)
        return by_shard

    def node_count(self) -> int:
        """Total nodes across all shards."""
        return sum(shard.node_count() for shard in self.shards)
