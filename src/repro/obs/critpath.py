"""Critical-path extraction with exact layer attribution.

Given a :class:`~repro.obs.trace.Tracer` run, rebuild the span DAG
(parent edges plus ``flow=True`` deferred-complete arrows) and extract,
per logical operation, the **simulated-time critical path**: the chain
of intervals that had to elapse, one after another, for the operation to
finish.  Every instant of the operation's end-to-end window is
attributed to exactly one of six named layers:

``client_compute``
    time the rank itself spent between waits: flattening, exchange
    bookkeeping, cache walks (self time of rank-lane spans).
``deferred_complete_overlap``
    the subset of ``client_compute`` that overlapped an in-flight
    deferred ``commit.complete`` (a ``flow=True`` span) — work the
    pipelined engine hid behind foreground compute.
``rpc_queueing``
    self time of RPC spans: request/response propagation and transport
    turnaround not covered by a link transmission or the server window.
``link_transfer``
    time inside network-lane spans (``net.link`` / ``net.tx`` /
    ``net.rx``): FIFO queueing plus serialization on a concrete link.
``shard_service``
    the server-side window of an RPC (``rpc.serve``): per-RPC handling
    overhead plus the handler body's own time.
``coalesce_park``
    time parked on another client's in-flight metadata fetch
    (``meta.park`` wait spans from the fetch-coalescing table).

The walk is backward-greedy: inside a span's window it repeatedly picks
the child whose (clipped) end is latest, attributes the gap above it to
the parent's layer, recurses into the child, and continues from the
child's start — concurrent siblings overlapped by the chosen child are
skipped, exactly like a longest-path walk over the interval DAG.
Segments are constructed contiguously **sharing boundary floats**, so
:func:`assert_partition` checks the attribution tiles the end-to-end
window with exact float equality — no epsilon — which is the partition
identity the acceptance criterion pins.
"""

from __future__ import annotations

import json
import math
from typing import Dict, Iterable, List, Sequence, Tuple

__all__ = [
    "LAYERS",
    "DEFAULT_OPERATIONS",
    "PartitionError",
    "Segment",
    "SpanDag",
    "assert_partition",
    "critical_path",
    "layer_breakdown",
    "layer_of",
    "operation_report",
    "dump_report",
]

#: attribution layers, in reporting order
LAYERS = (
    "client_compute",
    "deferred_complete_overlap",
    "rpc_queueing",
    "link_transfer",
    "shard_service",
    "coalesce_park",
)

#: span names treated as logical-operation roots by :func:`operation_report`
DEFAULT_OPERATIONS = (
    "file.write_at_all",
    "file.read_at_all",
    "file.write_at",
    "file.read_at",
    "commit",
    "rpc.coop_probe",
)


class PartitionError(AssertionError):
    """The attributed segments do not tile the operation window exactly."""


class Segment:
    """One attributed interval ``[start, end)`` of a critical path."""

    __slots__ = ("start", "end", "layer", "span_id", "name")

    def __init__(self, start: float, end: float, layer: str, span_id: int,
                 name: str):
        self.start = start
        self.end = end
        self.layer = layer
        self.span_id = span_id
        self.name = name

    @property
    def duration(self) -> float:
        return self.end - self.start

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Segment [{self.start}, {self.end}) {self.layer} "
                f"span={self.span_id} {self.name!r}>")


def layer_of(span) -> str:
    """The layer a span's *self time* belongs to."""
    if span.cat == "net":
        return "link_transfer"
    if span.name == "rpc.serve":
        return "shard_service"
    if span.cat == "rpc":
        return "rpc_queueing"
    if span.cat == "wait":
        return "coalesce_park"
    return "client_compute"


class SpanDag:
    """Parent/children index over a tracer's finished spans."""

    def __init__(self, spans: Iterable):
        #: finished spans only — an unfinished span has no interval to
        #: attribute (callers assert their traces are closed)
        self.spans = [span for span in spans if span.end is not None]
        self.by_id = {span.span_id: span for span in self.spans}
        self.children: Dict[int, List] = {}
        for span in self.spans:
            if span.parent_id is not None and span.parent_id in self.by_id:
                self.children.setdefault(span.parent_id, []).append(span)
        #: merged union of deferred-complete (``flow=True``) intervals,
        #: the windows ``client_compute`` splits against
        self.flow_intervals = _merge_intervals(
            [(span.start, span.end) for span in self.spans if span.flow])

    @classmethod
    def from_tracer(cls, tracer) -> "SpanDag":
        return cls(tracer.spans)

    def roots(self, names: Sequence[str]) -> List:
        """Finished spans whose name matches, in (start, span_id) order."""
        wanted = set(names)
        return sorted((span for span in self.spans if span.name in wanted),
                      key=lambda span: (span.start, span.span_id))


def _merge_intervals(intervals: List[Tuple[float, float]]
                     ) -> List[Tuple[float, float]]:
    merged: List[Tuple[float, float]] = []
    for start, end in sorted(intervals):
        if merged and start <= merged[-1][1]:
            last_start, last_end = merged[-1]
            if end > last_end:
                merged[-1] = (last_start, end)
        else:
            merged.append((start, end))
    return merged


# ----------------------------------------------------------------------
def _attribute(dag: SpanDag, span, lo: float, hi: float,
               segments: List[Segment]) -> None:
    """Backward-greedy cover of ``[lo, hi)`` of ``span``'s window."""
    layer = layer_of(span)
    kids = sorted(
        (child for child in dag.children.get(span.span_id, ())
         if not child.flow),
        key=lambda child: (child.end, child.start, child.span_id),
        reverse=True)
    t = hi
    for child in kids:
        if t <= lo:
            break
        if child.start >= t:
            # runs entirely under a concurrent sibling already chosen
            continue
        end = child.end if child.end < t else t
        if end <= lo:
            # sorted by end descending: nothing later reaches the window
            break
        if end < t:
            segments.append(Segment(end, t, layer, span.span_id, span.name))
        child_lo = child.start if child.start > lo else lo
        _attribute(dag, child, child_lo, end, segments)
        t = child_lo
    if t > lo:
        segments.append(Segment(lo, t, layer, span.span_id, span.name))


def _split_deferred_overlap(segments: List[Segment],
                            flow_intervals: List[Tuple[float, float]]
                            ) -> List[Segment]:
    """Recut ``client_compute`` segments against the deferred-complete
    union, reusing the union's boundary floats so the tiling stays exact."""
    if not flow_intervals:
        return segments
    out: List[Segment] = []
    for segment in segments:
        if segment.layer != "client_compute":
            out.append(segment)
            continue
        cursor = segment.start
        for window_start, window_end in flow_intervals:
            if window_end <= cursor:
                continue
            if window_start >= segment.end:
                break
            overlap_start = window_start if window_start > cursor else cursor
            overlap_end = (window_end if window_end < segment.end
                           else segment.end)
            if overlap_start > cursor:
                out.append(Segment(cursor, overlap_start, "client_compute",
                                   segment.span_id, segment.name))
            if overlap_end > overlap_start:
                out.append(Segment(overlap_start, overlap_end,
                                   "deferred_complete_overlap",
                                   segment.span_id, segment.name))
            cursor = overlap_end
            if cursor >= segment.end:
                break
        if cursor < segment.end:
            out.append(Segment(cursor, segment.end, "client_compute",
                               segment.span_id, segment.name))
    return out


def critical_path(source, root) -> List[Segment]:
    """The attributed critical path of ``root``'s window, sorted by start.

    ``source`` is a :class:`~repro.obs.trace.Tracer`, an iterable of
    spans, or a prebuilt :class:`SpanDag`.  The returned segments tile
    ``[root.start, root.end)`` exactly (:func:`assert_partition` runs
    before returning).
    """
    dag = source if isinstance(source, SpanDag) else \
        SpanDag(getattr(source, "spans", source))
    if root.end is None:
        raise PartitionError(f"root span {root!r} is still open")
    segments: List[Segment] = []
    _attribute(dag, root, root.start, root.end, segments)
    segments = _split_deferred_overlap(segments, dag.flow_intervals)
    segments.sort(key=lambda segment: (segment.start, segment.end))
    assert_partition(segments, root.start, root.end)
    return segments


def assert_partition(segments: List[Segment], lo: float, hi: float) -> None:
    """Exact-tiling check: contiguous, in order, spanning ``[lo, hi)``.

    Boundary comparisons are exact float equality — the walk constructs
    neighbouring segments from the *same* float values, so any gap or
    overlap is an attribution bug, not rounding.
    """
    if hi < lo:
        raise PartitionError(f"window [{lo}, {hi}) is negative")
    if lo == hi:
        if segments:
            raise PartitionError("empty window attributed segments")
        return
    if not segments:
        raise PartitionError(f"window [{lo}, {hi}) got no segments")
    cursor = lo
    for segment in segments:
        if segment.start != cursor:
            raise PartitionError(
                f"gap/overlap at {cursor!r}: next segment starts at "
                f"{segment.start!r} ({segment!r})")
        if segment.end < segment.start:
            raise PartitionError(f"negative segment {segment!r}")
        cursor = segment.end
    if cursor != hi:
        raise PartitionError(
            f"segments end at {cursor!r}, window ends at {hi!r}")


def layer_breakdown(segments: List[Segment]) -> Dict[str, float]:
    """Per-layer time sums over one path; every layer key always present.

    ``total`` is defined as the sum of the layer values (in ``LAYERS``
    order), so ``sum(layers) == total`` holds exactly by construction.
    """
    sums = {layer: 0.0 for layer in LAYERS}
    for segment in segments:
        sums[segment.layer] += segment.duration
    sums["total"] = sum(sums[layer] for layer in LAYERS)
    return sums


# ----------------------------------------------------------------------
def operation_report(source,
                     operations: Sequence[str] = DEFAULT_OPERATIONS,
                     ) -> Dict[str, object]:
    """Aggregated per-operation critical-path breakdown of a traced run.

    For every finished span whose name is in ``operations``, extract its
    critical path (asserting the exact partition) and aggregate per
    operation name: occurrence count, summed end-to-end window and
    summed per-layer attribution.  The result is JSON-ready and — since
    every number derives from the simulation clock — byte-stable across
    reruns of the same seed.
    """
    dag = source if isinstance(source, SpanDag) else \
        SpanDag(getattr(source, "spans", source))
    report: Dict[str, object] = {"layers": list(LAYERS), "operations": {}}
    ops: Dict[str, Dict[str, object]] = report["operations"]
    for root in dag.roots(operations):
        segments = critical_path(dag, root)
        breakdown = layer_breakdown(segments)
        end_to_end = root.end - root.start
        entry = ops.get(root.name)
        if entry is None:
            entry = ops[root.name] = {
                "count": 0,
                "end_to_end_s": 0.0,
                "attributed_s": 0.0,
                "layers": {layer: 0.0 for layer in LAYERS},
            }
        entry["count"] += 1
        entry["end_to_end_s"] += end_to_end
        entry["attributed_s"] += breakdown["total"]
        for layer in LAYERS:
            entry["layers"][layer] += breakdown[layer]
        if not math.isclose(breakdown["total"], end_to_end,
                            rel_tol=1e-9, abs_tol=1e-12):
            raise PartitionError(
                f"{root.name} span {root.span_id}: layers sum to "
                f"{breakdown['total']!r}, window is {end_to_end!r}")
    return report


def dump_report(source, path: str,
                operations: Sequence[str] = DEFAULT_OPERATIONS,
                ) -> Dict[str, object]:
    """Write :func:`operation_report` as deterministic JSON."""
    report = operation_report(source, operations)
    with open(path, "w") as handle:
        json.dump(report, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return report
