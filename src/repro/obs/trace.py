"""Causal spans on the simulation clock.

A :class:`Span` is one timed interval on a *lane* — a ``(group, name)``
pair such as ``("rank", "sc3")``, ``("shard", "meta0")`` or
``("link", "egress:sc-rank0")`` — carrying a parent id, a category and
small structured args.  The :class:`Tracer` collects them; span ids are
sequential, timestamps come exclusively from the simulation clock, and no
wall-clock value ever enters a span, so two runs of the same seed produce
byte-identical traces.

Parenting model
---------------
Each rank's operations are sequential within its own simulated process, so
a per-actor :class:`TraceContext` keeps a *stack* of open spans and parents
new ones under the top by default.  Anything that executes concurrently
within a rank (upload fanouts, the pipelined ticket process, deferred
completes, watchdog flushes) must **not** touch the stack: those sites use
:meth:`TraceContext.begin_detached` / :meth:`TraceContext.wrap` with an
explicit parent.  A detached span whose interval may outlive its parent
(a deferred complete) is marked ``flow=True`` — causally linked, but
exempt from interval nesting.

Disabled tracing is the :data:`NULL_TRACER` singleton with
``enabled=False``; call sites hold ``trace_ctx = None`` and guard with a
single attribute test, so the disabled path allocates nothing.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

__all__ = ["Span", "Tracer", "NullTracer", "NULL_TRACER", "TraceContext"]

Lane = Tuple[str, str]


class Span:
    """One timed interval; ``end`` is ``None`` while the span is open."""

    __slots__ = ("span_id", "parent_id", "name", "cat", "lane",
                 "start", "end", "args", "flow")

    def __init__(self, span_id: int, parent_id: Optional[int], name: str,
                 cat: str, lane: Lane, start: float,
                 args: Optional[Dict], flow: bool = False):
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.cat = cat
        self.lane = lane
        self.start = start
        self.end: Optional[float] = None
        self.args = args
        self.flow = flow

    @property
    def duration(self) -> Optional[float]:
        return None if self.end is None else self.end - self.start

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Span {self.span_id} {self.name!r} lane={self.lane} "
                f"[{self.start}, {self.end}) parent={self.parent_id}>")


class Tracer:
    """Collects spans and counter samples on the simulation clock."""

    enabled = True

    def __init__(self, clock: Callable[[], float]):
        self.clock = clock
        #: every span ever begun, in span-id order (open spans included)
        self.spans: List[Span] = []
        #: counter timeline samples: ``(ts, lane, series, values)``
        self.counter_samples: List[Tuple[float, Lane, str, Dict]] = []
        self._next_id = 1

    # ------------------------------------------------------------------
    def begin_span(self, name: str, cat: str, lane: Lane,
                   parent_id: Optional[int] = None,
                   args: Optional[Dict] = None, flow: bool = False) -> Span:
        span = Span(self._next_id, parent_id, name, cat, lane,
                    self.clock(), args, flow)
        self._next_id += 1
        self.spans.append(span)
        return span

    def end_span(self, span: Span, args: Optional[Dict] = None) -> None:
        span.end = self.clock()
        if args:
            span.args = {**(span.args or {}), **args}

    def complete_span(self, name: str, cat: str, lane: Lane, start: float,
                      end: float, parent_id: Optional[int] = None,
                      args: Optional[Dict] = None) -> Span:
        """Record an already-timed interval (network link reservations:
        the analytic model computes start/done without sleeping there)."""
        span = Span(self._next_id, parent_id, name, cat, lane, start, args)
        self._next_id += 1
        span.end = end
        self.spans.append(span)
        return span

    def counter(self, lane: Lane, series: str, values: Dict) -> None:
        """Record one counter-timeline sample (a Chrome ``"C"`` event)."""
        self.counter_samples.append((self.clock(), lane, series, values))

    # ------------------------------------------------------------------
    def context(self, lane: Lane, **attrs) -> "TraceContext":
        """A per-actor context whose spans all land on ``lane``."""
        return TraceContext(self, lane, attrs)

    def finished_spans(self) -> List[Span]:
        return [span for span in self.spans if span.end is not None]


class NullTracer:
    """The disabled recorder: every operation is a no-op.

    Call sites normally never reach it (they guard on ``ctx is None``);
    it exists so code holding a tracer reference unconditionally — the
    ``Observability`` holder, diagnostic dumps — needs no branches.
    """

    enabled = False
    spans: List[Span] = []
    counter_samples: list = []

    def begin_span(self, *args, **kwargs) -> None:
        return None

    def end_span(self, *args, **kwargs) -> None:
        return None

    def complete_span(self, *args, **kwargs) -> None:
        return None

    def counter(self, *args, **kwargs) -> None:
        return None

    def context(self, lane: Lane, **attrs) -> None:
        return None

    def finished_spans(self) -> List[Span]:
        return []


NULL_TRACER = NullTracer()


class TraceContext:
    """Span stack of one sequential actor (one rank process).

    ``begin``/``finish`` maintain the stack for the actor's *mainline*
    flow; concurrent work inside the same rank uses ``begin_detached`` or
    ``wrap`` with an explicit parent and never touches the stack.
    """

    __slots__ = ("tracer", "lane", "attrs", "stack")

    def __init__(self, tracer: Tracer, lane: Lane, attrs: Dict):
        self.tracer = tracer
        self.lane = lane
        self.attrs = attrs
        self.stack: List[Span] = []

    @property
    def current(self) -> Optional[Span]:
        return self.stack[-1] if self.stack else None

    def current_id(self) -> Optional[int]:
        return self.stack[-1].span_id if self.stack else None

    # ------------------------------------------------------------------
    def begin(self, name: str, cat: str = "op",
              lane: Optional[Lane] = None, **args) -> Span:
        """Open a mainline span under the current stack top and push it."""
        span = self.tracer.begin_span(
            name, cat, lane or self.lane, parent_id=self.current_id(),
            args={**self.attrs, **args} if (self.attrs or args) else None)
        self.stack.append(span)
        return span

    def finish(self, span: Span, **args) -> None:
        """Close a mainline span; pops it (and, defensively, anything an
        exception path left open above it)."""
        while self.stack and self.stack[-1] is not span:
            self.stack.pop()
        if self.stack:
            self.stack.pop()
        self.tracer.end_span(span, args or None)

    # ------------------------------------------------------------------
    def begin_detached(self, name: str, cat: str = "op",
                       parent: Optional[Span] = None,
                       lane: Optional[Lane] = None, flow: bool = False,
                       **args) -> Span:
        """Open a span with an explicit parent, outside the stack — for
        work that runs concurrently within the rank."""
        if parent is None:
            parent_id = None
        else:
            parent_id = parent.span_id
        return self.tracer.begin_span(
            name, cat, lane or self.lane, parent_id=parent_id,
            args={**self.attrs, **args} if (self.attrs or args) else None,
            flow=flow)

    def end(self, span: Span, **args) -> None:
        """Close a detached span (no stack interaction)."""
        self.tracer.end_span(span, args or None)

    def wrap(self, gen, name: str, cat: str = "op",
             parent: Optional[Span] = None, flow: bool = False, **args):
        """Run generator ``gen`` under a detached span.

        The span opens immediately (the caller is about to schedule the
        generator at the current instant) and closes exactly when the
        generator completes — however the surrounding join is shaped.
        The wrapper adds no simulation events, so wrapped and unwrapped
        timings are identical.
        """
        span = self.begin_detached(name, cat, parent=parent, flow=flow,
                                   **args)

        def runner():
            try:
                result = yield from gen
            finally:
                self.tracer.end_span(span)
            return result

        return runner()
