"""Cross-run artifact comparison with per-metric tolerance bands.

Compares two registry snapshots or ``BENCH_*.json`` artifacts and
classifies every leaf value into one of three rule families:

* **exact** (the default) — simulation-derived values: sim-time columns,
  RPC/event counters, digests, percentile columns, settings.  Two runs
  of the same code must agree byte-for-byte; any difference is a
  regression.
* **wall band** — host-wall-clock-derived values (``wall_clock_s``,
  ``events_per_sec`` and friends): noisy and host-dependent, so they
  only regress when they worsen beyond a multiplicative band
  (``--wall-band``, default 4x — wide enough for cross-host CI,
  tight enough to catch an accidental O(n^2)).  Direction-aware:
  ``events_per_sec``/``speedup_vs_seed`` regress downward, everything
  else upward.  Improvements never flag.
* **ignore** — provenance that legitimately differs between runs
  (``python`` version, measurement-method strings).

``BENCH_*`` artifacts key their ``rows`` list by each row's ``label``
before flattening, so a reordered artifact still compares row-to-row
and a message names the row it fired in.  :func:`compare_files` returns
a JSON-ready report; the CLI (``python -m repro.obs diff``) exits
non-zero when any regression survives — the CI perf-regression gate.
"""

from __future__ import annotations

import fnmatch
import json
from typing import Dict, List, Optional, Sequence

__all__ = ["DEFAULT_WALL_BAND", "DEFAULT_WALL_PATTERNS",
           "DEFAULT_IGNORE_PATTERNS", "flatten", "compare",
           "compare_files", "write_report"]

#: default multiplicative tolerance for wall-clock-family values
DEFAULT_WALL_BAND = 4.0

#: dotted-path patterns treated as host-wall-clock-derived (banded)
DEFAULT_WALL_PATTERNS = (
    "*wall_clock_s*",
    "*wall_clock*",
    "*events_per_sec",
    "*speedup_vs_seed",
    "*tracing_overhead_pct",
)

#: dotted-path patterns never compared (run provenance)
DEFAULT_IGNORE_PATTERNS = (
    "python",
    "*seed_reference.method",
    "*seed_reference.source",
)

#: higher is better for these (regress downward); the rest of the wall
#: family regresses upward
_HIGHER_IS_BETTER = ("*events_per_sec", "*speedup_vs_seed")


def _rows_by_label(rows: List) -> Optional[Dict[str, object]]:
    """``rows`` keyed by label when every entry is a labelled dict."""
    if not rows or not all(isinstance(row, dict) and "label" in row
                           for row in rows):
        return None
    keyed: Dict[str, object] = {}
    for row in rows:
        label = str(row["label"])
        if label in keyed:  # duplicate labels: fall back to indices
            return None
        keyed[label] = row
    return keyed


def flatten(value, prefix: str = "",
            out: Optional[Dict[str, object]] = None) -> Dict[str, object]:
    """Leaf values under dotted paths; ``rows`` lists keyed by label."""
    if out is None:
        out = {}
    if isinstance(value, dict):
        for key in value:
            path = f"{prefix}.{key}" if prefix else str(key)
            flatten(value[key], path, out)
    elif isinstance(value, list):
        keyed = _rows_by_label(value)
        if keyed is not None:
            for label, row in keyed.items():
                flatten(row, f"{prefix}[{label}]", out)
        else:
            for index, item in enumerate(value):
                flatten(item, f"{prefix}[{index}]", out)
    else:
        out[prefix] = value
    return out


def _matches(path: str, patterns: Sequence[str]) -> bool:
    return any(fnmatch.fnmatch(path, pattern) for pattern in patterns)


def _is_number(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def compare(baseline: Dict, current: Dict, *,
            wall_band: float = DEFAULT_WALL_BAND,
            wall_patterns: Sequence[str] = DEFAULT_WALL_PATTERNS,
            ignore_patterns: Sequence[str] = DEFAULT_IGNORE_PATTERNS,
            ) -> Dict[str, object]:
    """Compare two loaded artifacts; returns the JSON-ready report."""
    base_flat = flatten(baseline)
    curr_flat = flatten(current)
    regressions: List[str] = []
    notes: List[str] = []
    compared = 0

    for path in sorted(base_flat):
        if _matches(path, ignore_patterns):
            continue
        if path not in curr_flat:
            regressions.append(f"{path}: present in baseline, missing now")
            continue
        expected = base_flat[path]
        actual = curr_flat[path]
        compared += 1
        if _matches(path, wall_patterns):
            if expected is None or actual is None:
                if expected is not actual:
                    notes.append(f"{path}: {expected!r} -> {actual!r} "
                                 "(wall-family null change)")
                continue
            if not (_is_number(expected) and _is_number(actual)):
                if expected != actual:
                    regressions.append(
                        f"{path}: {expected!r} != {actual!r}")
                continue
            if _matches(path, _HIGHER_IS_BETTER):
                floor = (expected / wall_band if expected > 0
                         else expected)
                if actual < floor:
                    regressions.append(
                        f"{path}: {actual!r} below {floor!r} "
                        f"(baseline {expected!r} / band {wall_band})")
            else:
                ceiling = (expected * wall_band if expected > 0
                           else expected)
                if actual > ceiling and actual - expected > 1e-9:
                    regressions.append(
                        f"{path}: {actual!r} above {ceiling!r} "
                        f"(baseline {expected!r} x band {wall_band})")
            continue
        # exact family: simulation-derived values must match bit for bit
        if expected != actual or type(expected) is not type(actual):
            regressions.append(f"{path}: expected {expected!r}, "
                               f"got {actual!r}")

    for path in sorted(curr_flat):
        if path not in base_flat and not _matches(path, ignore_patterns):
            notes.append(f"{path}: new (absent from baseline)")

    return {
        "status": "regression" if regressions else "ok",
        "compared": compared,
        "wall_band": wall_band,
        "regressions": regressions,
        "notes": notes,
    }


def compare_files(baseline_path: str, current_path: str,
                  **kwargs) -> Dict[str, object]:
    """Load and compare two artifact files."""
    with open(baseline_path) as handle:
        baseline = json.load(handle)
    with open(current_path) as handle:
        current = json.load(handle)
    report = compare(baseline, current, **kwargs)
    report["baseline"] = baseline_path
    report["current"] = current_path
    return report


def write_report(report: Dict[str, object], path: str) -> None:
    with open(path, "w") as handle:
        json.dump(report, handle, indent=1, sort_keys=True)
        handle.write("\n")
