"""Always-on bounded flight recorder: the last N timed events, cheaply.

Full span tracing answers *everything* but is opt-in; the flight
recorder answers "what just happened" and is cheap enough to default on:
a bounded ring buffer (``collections.deque`` with ``maxlen``) of small
tuples ``(start, end, kind, who, what)`` appended on events the
simulation already executes — RPC completions and File-layer operations.
No simulation events are added, no wall-clock value is recorded and the
registry is never touched, so enabling the recorder is proven
behaviour-neutral the same way tracing is (the invariant test runs the
identical workload with the recorder on and off and asserts bit-identical
outcomes).

Fuzzer triage bundles dump the ring (:meth:`FlightRecorder.as_dict`) so
flagged runs carry their recent history even when the original execution
did not trace; :meth:`timeline_digest` hashes the canonical dump, giving
replays a one-line equality witness.
"""

from __future__ import annotations

import hashlib
import json
from collections import deque
from typing import Dict, List, Tuple

__all__ = ["FlightRecorder", "DEFAULT_FLIGHT_CAPACITY"]

#: default ring capacity (entries, not bytes) — large enough to hold the
#: full tail of a collective round at hundreds of ranks
DEFAULT_FLIGHT_CAPACITY = 4096

Entry = Tuple[float, float, str, str, str]


class FlightRecorder:
    """Bounded ring of recent ``(start, end, kind, who, what)`` events."""

    __slots__ = ("capacity", "recorded", "_ring")

    def __init__(self, capacity: int = DEFAULT_FLIGHT_CAPACITY):
        self.capacity = int(capacity)
        #: total events ever recorded (evictions included)
        self.recorded = 0
        self._ring: "deque[Entry]" = deque(maxlen=self.capacity)

    # ------------------------------------------------------------------
    def record(self, start: float, end: float, kind: str, who: str,
               what: str) -> None:
        """Append one event; the oldest entry falls off a full ring."""
        self._ring.append((start, end, kind, who, what))
        self.recorded += 1

    def __len__(self) -> int:
        return len(self._ring)

    @property
    def dropped(self) -> int:
        """Events evicted from the ring so far."""
        return self.recorded - len(self._ring)

    def entries(self) -> List[Entry]:
        """Ring contents, oldest first."""
        return list(self._ring)

    # ------------------------------------------------------------------
    def as_dict(self) -> Dict[str, object]:
        """Deterministic JSON-ready dump (no wall-clock content)."""
        return {
            "capacity": self.capacity,
            "recorded": self.recorded,
            "dropped": self.dropped,
            "entries": [
                {"start": start, "end": end, "kind": kind,
                 "who": who, "what": what}
                for start, end, kind, who, what in self._ring
            ],
        }

    def dump(self, path: str) -> Dict[str, object]:
        data = self.as_dict()
        with open(path, "w") as handle:
            json.dump(data, handle, indent=1, sort_keys=True)
            handle.write("\n")
        return data

    def timeline_digest(self) -> str:
        """SHA-256 over the canonical entry list — two runs recorded the
        same recent history iff their digests match."""
        payload = json.dumps(self.as_dict()["entries"], sort_keys=True,
                             separators=(",", ":"))
        return hashlib.sha256(payload.encode()).hexdigest()
