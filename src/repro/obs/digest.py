"""Deterministic fixed-log-bucket latency histograms.

A :class:`LatencyDigest` is an HDR-style log-linear histogram over
**integer nanoseconds**: each recorded value is quantized to an integer
bucket index computed from its bit length plus ``SUB_BITS`` linear
sub-bucket bits, so the worst-case quantization error is bounded at
``1/2^SUB_BITS`` of the value (25% with the default two sub-bucket bits)
while the bucket count stays tiny.  Everything is pure integer
arithmetic on values the simulation clock produced — no floating-point
log, no sampling, no reservoir — so the digest is:

* **insertion-order independent**: the same multiset of values produces
  the identical bucket table however it arrives (the property test
  pins this), and
* **byte-stable across runs**: two runs of the same seed serialize to
  the same bytes, making percentile columns diffable artifacts.

Percentiles report the *inclusive upper bound* of the bucket holding the
requested rank (a deterministic over-estimate within the quantization
bound); ``max`` is tracked exactly.

:class:`DigestTaps` is the thin write-side facade the instrumented call
sites hold (``cluster.obs.digests``) — ``None`` when latency digests are
disabled, which is the single attribute test the hot paths pay.
"""

from __future__ import annotations

import math
from typing import Dict

__all__ = ["LatencyDigest", "DigestTaps", "SUB_BITS"]

#: linear sub-bucket bits per power of two (2 -> 25% worst-case error)
SUB_BITS = 2

_SUB_COUNT = 1 << SUB_BITS
_SUB_MASK = _SUB_COUNT - 1
#: values below this are their own (exact) bucket
_LINEAR_LIMIT = 1 << (SUB_BITS + 1)

_NS = 1_000_000_000


def bucket_index(ns: int) -> int:
    """Monotone log-linear bucket index of a non-negative nanosecond value."""
    if ns < _LINEAR_LIMIT:
        return ns
    exp = ns.bit_length() - 1
    return (((exp - SUB_BITS + 1) << SUB_BITS)
            + ((ns >> (exp - SUB_BITS)) & _SUB_MASK))


def bucket_bound(index: int) -> int:
    """Inclusive upper nanosecond bound of bucket ``index``."""
    if index < _LINEAR_LIMIT:
        return index
    exp = (index >> SUB_BITS) + SUB_BITS - 1
    width = 1 << (exp - SUB_BITS)
    lower = (1 << exp) + (index & _SUB_MASK) * width
    return lower + width - 1


class LatencyDigest:
    """Fixed-log-bucket histogram of simulated latencies (seconds in,
    integer nanoseconds inside)."""

    __slots__ = ("name", "count", "max_ns", "sum_ns", "_buckets")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        #: exact maximum (never bucketed)
        self.max_ns = 0
        self.sum_ns = 0
        self._buckets: Dict[int, int] = {}

    # ------------------------------------------------------------------
    def record(self, seconds: float) -> None:
        ns = round(seconds * _NS)
        if ns < 0:
            ns = 0
        index = bucket_index(ns)
        buckets = self._buckets
        buckets[index] = buckets.get(index, 0) + 1
        self.count += 1
        self.sum_ns += ns
        if ns > self.max_ns:
            self.max_ns = ns

    @property
    def value(self) -> int:
        """Sample count (what generic registry reads see)."""
        return self.count

    # ------------------------------------------------------------------
    def buckets(self) -> Dict[int, int]:
        """``bucket index -> count`` in ascending index order."""
        return {index: self._buckets[index]
                for index in sorted(self._buckets)}

    def percentile(self, q: float) -> float:
        """Upper bound (seconds) of the bucket holding rank ``ceil(q*n)``."""
        if not self.count:
            return 0.0
        rank = max(1, math.ceil(q * self.count))
        cumulative = 0
        for index in sorted(self._buckets):
            cumulative += self._buckets[index]
            if cumulative >= rank:
                return bucket_bound(index) / _NS
        return self.max_ns / _NS  # pragma: no cover - rank <= count

    def mean(self) -> float:
        return self.sum_ns / self.count / _NS if self.count else 0.0

    def quantiles(self) -> Dict[str, float]:
        """The artifact columns: count, p50/p95/p99 (bucketed), exact max."""
        return {
            "count": self.count,
            "p50": round(self.percentile(0.50), 9),
            "p95": round(self.percentile(0.95), 9),
            "p99": round(self.percentile(0.99), 9),
            "max": round(self.max_ns / _NS, 9),
        }


class DigestTaps:
    """Write-side facade over the registry's latency digests.

    Instrumented sites (RPC transport, network reservations, File ops)
    hold this object — or ``None`` when digests are disabled — and call
    one method per sample.  All digests live in the owning
    :class:`~repro.obs.registry.MetricsRegistry` under stable dotted
    names, so they appear in every ``snapshot()`` and bench artifact.
    """

    __slots__ = ("registry",)

    def __init__(self, registry):
        self.registry = registry

    def rpc(self, method: str, seconds: float) -> None:
        """One completed RPC round-trip (request to response landed)."""
        registry = self.registry
        registry.digest("rpc.latency.all").record(seconds)
        registry.digest("rpc.latency." + method).record(seconds)

    def link(self, link_name: str, queue_delay: float) -> None:
        """One link reservation's FIFO queueing delay, aggregated per link
        class (``egress``/``ingress``/``uplink``/``downlink``/``nic``) —
        per-link timelines stay in :class:`~repro.obs.linktel.LinkTelemetry`."""
        kind = link_name.partition(":")[0]
        registry = self.registry
        registry.digest("net.queue_delay.all").record(queue_delay)
        registry.digest("net.queue_delay." + kind).record(queue_delay)

    def op(self, name: str, seconds: float) -> None:
        """One completed File-layer operation (``file.write_at_all``...)."""
        self.registry.digest("op.latency." + name).record(seconds)


def digest_columns(registry, name: str = "rpc.latency.all",
                   prefix: str = "rpc_latency") -> Dict[str, float]:
    """Flat ``{prefix}_p50/_p95/_p99/_max/_count`` columns for bench rows
    (zeros when the digest never collected — keeps row shapes stable)."""
    metric = registry._metrics.get(name) if registry is not None else None
    if not isinstance(metric, LatencyDigest):
        quantiles: Dict[str, float] = {"count": 0, "p50": 0.0, "p95": 0.0,
                                       "p99": 0.0, "max": 0.0}
    else:
        quantiles = metric.quantiles()
    return {f"{prefix}_{key}": value for key, value in quantiles.items()}
