"""Central metrics registry: counters, gauges, sim-time-weighted series.

One flat namespace of dotted metric names (``metadata.rpcs.read``,
``cache.shared.hits``, ``net.link.bytes``) replacing the stack's scattered
per-object stats dicts.  The registry is *pull-based*: the hot paths keep
their plain integer counters, and :mod:`repro.obs.views` materializes them
into a registry at collection time — so the registry costs nothing while
the simulation runs.

Partition identities (``lookups == private_hits + shared_hits +
fetched_lookups`` and friends) register on the same object and are
re-checked against the collected values by :meth:`MetricsRegistry.
assert_identities` — every bench suite calls it on every row.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs.digest import LatencyDigest

__all__ = ["Counter", "Gauge", "TimeWeightedSeries", "LatencyDigest",
           "MetricsRegistry", "IdentityViolation"]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class TimeWeightedSeries:
    """A value tracked over simulation time.

    Each :meth:`record` holds the previous value over the elapsed interval,
    so :meth:`mean` is the *sim-time-weighted* average — the right notion
    for queue depths and utilization, where a depth held for 1 s matters
    1000x more than the same depth held for 1 ms.
    """

    __slots__ = ("name", "_clock", "_value", "_since", "_started",
                 "_integral", "samples", "max", "min")

    def __init__(self, name: str, clock: Callable[[], float]):
        self.name = name
        self._clock = clock
        self._value = 0.0
        self._since: Optional[float] = None
        self._started: Optional[float] = None
        self._integral = 0.0
        self.samples = 0
        self.max: Optional[float] = None
        self.min: Optional[float] = None

    def record(self, value: float) -> None:
        now = self._clock()
        if self._since is None:
            self._started = now
        else:
            self._integral += self._value * (now - self._since)
        self._since = now
        self._value = value
        self.samples += 1
        self.max = value if self.max is None else max(self.max, value)
        self.min = value if self.min is None else min(self.min, value)

    @property
    def value(self) -> float:
        return self._value

    def mean(self) -> float:
        """Sim-time-weighted mean since the first sample."""
        if self._since is None:
            return 0.0
        now = self._clock()
        integral = self._integral + self._value * (now - self._since)
        elapsed = now - self._started
        return integral / elapsed if elapsed > 0 else self._value


class IdentityViolation(AssertionError):
    """A registered partition identity does not hold on collected values."""


class MetricsRegistry:
    """Flat registry of named instruments plus partition identities."""

    def __init__(self, clock: Optional[Callable[[], float]] = None):
        self._clock = clock or (lambda: 0.0)
        self._metrics: Dict[str, object] = {}
        #: ``(label, total_name, part_names)`` checked by assert_identities
        self._identities: List[Tuple[str, str, Tuple[str, ...]]] = []

    # ------------------------------------------------------------------
    def _get(self, name: str, factory):
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory(name)
            self._metrics[name] = metric
        return metric

    def counter(self, name: str) -> Counter:
        metric = self._get(name, Counter)
        if not isinstance(metric, Counter):
            raise TypeError(f"{name!r} is a {type(metric).__name__}, "
                            "not a Counter")
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._get(name, Gauge)
        if not isinstance(metric, Gauge):
            raise TypeError(f"{name!r} is a {type(metric).__name__}, "
                            "not a Gauge")
        return metric

    def series(self, name: str) -> TimeWeightedSeries:
        metric = self._get(
            name, lambda n: TimeWeightedSeries(n, self._clock))
        if not isinstance(metric, TimeWeightedSeries):
            raise TypeError(f"{name!r} is a {type(metric).__name__}, "
                            "not a TimeWeightedSeries")
        return metric

    def digest(self, name: str) -> LatencyDigest:
        metric = self._get(name, LatencyDigest)
        if not isinstance(metric, LatencyDigest):
            raise TypeError(f"{name!r} is a {type(metric).__name__}, "
                            "not a LatencyDigest")
        return metric

    # convenience write forms
    def add(self, name: str, amount: int = 1) -> None:
        self.counter(name).inc(amount)

    def set(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def record(self, name: str, value: float) -> None:
        self.series(name).record(value)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def get(self, name: str, default=None):
        """Current value of a metric, or ``default`` when absent."""
        metric = self._metrics.get(name)
        if metric is None:
            return default
        return metric.value

    # ------------------------------------------------------------------
    def register_identity(self, label: str, total: str,
                          parts: Sequence[str]) -> None:
        """Declare ``total == sum(parts)`` over collected values.

        Re-registering a label replaces its previous declaration, so
        collectors may register on every collection pass without piling
        up duplicates.
        """
        entry = (label, total, tuple(parts))
        for i, (existing, _, _) in enumerate(self._identities):
            if existing == label:
                self._identities[i] = entry
                return
        self._identities.append(entry)

    def check_identities(self) -> List[str]:
        """Return one description per violated identity (empty when all
        hold; identities whose total metric was never collected are
        vacuously true)."""
        problems = []
        for label, total, parts in self._identities:
            if total not in self._metrics:
                continue
            expected = self.get(total)
            actual = sum(self.get(part, 0) for part in parts)
            if expected != actual:
                detail = " + ".join(
                    f"{part}={self.get(part, 0)}" for part in parts)
                problems.append(
                    f"{label}: {total}={expected} != {detail} (={actual})")
        return problems

    def assert_identities(self) -> None:
        problems = self.check_identities()
        if problems:
            raise IdentityViolation("; ".join(problems))

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """All collected values as one flat, deterministically ordered
        dict — counters and gauges under their name, series expanded to
        ``.last`` / ``.mean`` / ``.max`` / ``.samples``, latency digests
        to ``.count`` / ``.p50`` / ``.p95`` / ``.p99`` / ``.max``."""
        out: Dict[str, object] = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, TimeWeightedSeries):
                out[f"{name}.last"] = metric.value
                out[f"{name}.mean"] = round(metric.mean(), 9)
                out[f"{name}.max"] = metric.max
                out[f"{name}.samples"] = metric.samples
            elif isinstance(metric, LatencyDigest):
                for key, value in metric.quantiles().items():
                    out[f"{name}.{key}"] = value
            else:
                out[name] = metric.value
        return out
