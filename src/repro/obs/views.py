"""Pull-based collectors: scattered stats surfaces → one metrics registry.

The hot paths keep their plain integer counters (``BlobClient``'s fields,
``CacheStats``, ``CoalescerStats``, ``CollectiveStats``, per-link counters
of the queued network); these collectors materialize them into a
:class:`~repro.obs.registry.MetricsRegistry` under stable dotted names at
*collection time* — typically once, after a run — so instrumentation costs
nothing while the simulation executes.

Naming fixes a long-standing drift: ``BlobSeerDeployment.stats()`` reports
``metadata_read_rpcs`` counted **server-side** (``get_node`` +
``get_nodes`` handler invocations) while ``BlobClient.metadata_read_rpcs``
counts **client-side** issue events — same key, different quantities.
Here the two live apart as ``metadata.server.read_rpcs`` and
``metadata.client.read_rpcs``; :data:`DEPRECATED_STAT_ALIASES` maps the
old ambiguous keys to their canonical server-side names for consumers
migrating off the legacy dicts.

Partition identities re-asserted against the registry (see
:meth:`~repro.obs.registry.MetricsRegistry.assert_identities`):

* ``metadata.cache.lookups == metadata.cache.hits +
  cache.shared.client_hits + cache.peer.client_hits +
  metadata.client.fetched_lookups`` — every private-tier lookup is
  answered by exactly one of the private cache, the node's shared tier,
  a cooperative peer node, or a provider fetch (registered only when
  every collected client runs a private cache; the peer part is 0 with
  the cooperative tier disabled);
* ``cache.shared.lookups == cache.shared.hits + cache.shared.misses`` —
  the shared services' own partition (remote peer probes use the
  stat-free ``peek`` path, so they never perturb it);
* ``cache.peer.served_lookups == cache.peer.served_hits +
  cache.peer.served_misses`` — the cooperative peer services' own
  partition;
* ``cache.shared.lookups == cache.shared.client_hits +
  cache.peer.client_hits + metadata.client.fetched_lookups`` — the
  *cross-surface* check: the lookups the shared services served must
  equal the lookups the clients say fell through their private tier
  (registered by :func:`collect_all` only when the caller attests that
  every client attached to the deployment was collected);
* ``cache.peer.served_hits == cache.peer.client_hits +
  cache.peer.rejections`` — every answer a peer service served was
  either admitted by the receiving client's watermark gate or rejected
  by it (same attestation, cooperative tier present).
"""

from __future__ import annotations

from typing import Dict, Iterable, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.blobseer.client import BlobClient
    from repro.blobseer.deployment import BlobSeerDeployment
    from repro.cluster.cluster import Cluster
    from repro.mpi.simcomm import Communicator
    from repro.mpiio.adio.versioning import VersioningDriver
    from repro.obs.linktel import LinkTelemetry
    from repro.obs.registry import MetricsRegistry

__all__ = [
    "DEPRECATED_STAT_ALIASES",
    "collect_all",
    "collect_clients",
    "collect_cluster",
    "collect_collective",
    "collect_comms",
    "collect_coop_cache",
    "collect_deployment",
    "collect_link_telemetry",
    "collect_shared_cache",
    "deprecated_stats_view",
]

#: legacy ``BlobSeerDeployment.stats()`` keys → canonical registry names.
#: The legacy ``metadata_read_rpcs`` (and friends) were *server-side*
#: handler counts despite sharing their name with the client-side fields
#: of :class:`~repro.blobseer.client.BlobClient`.
DEPRECATED_STAT_ALIASES: Dict[str, str] = {
    "metadata_read_rpcs": "metadata.server.read_rpcs",
    "metadata_batched_rpcs": "metadata.server.batched_read_rpcs",
    "metadata_put_rpcs": "metadata.server.put_rpcs",
    "metadata_prefetched_nodes": "metadata.server.prefetched_nodes",
    "metadata_nodes": "metadata.server.nodes",
    "providers": "storage.providers",
    "chunks": "storage.chunks",
    "stored_bytes": "storage.stored_bytes",
    "snapshots_published": "version.snapshots_published",
    "tickets_assigned": "version.tickets_assigned",
    "load_imbalance": "storage.load_imbalance",
}


# ----------------------------------------------------------------------
# per-surface collectors
# ----------------------------------------------------------------------
def collect_clients(registry: "MetricsRegistry",
                    clients: Iterable["BlobClient"]) -> None:
    """Client-side counters: data volume, control RPCs, cache tiers.

    Registers the private-tier lookup partition identity when every
    collected client runs a private metadata cache (without one the
    private-tier counters cannot partition anything).
    """
    clients = list(clients)
    all_private = bool(clients)
    for client in clients:
        registry.add("client.bytes_written", client.bytes_written)
        registry.add("client.bytes_read", client.bytes_read)
        registry.add("client.writes", client.writes)
        registry.add("client.reads", client.reads)
        registry.add("client.logical_writes", client.logical_writes)
        registry.add("metadata.client.read_rpcs", client.metadata_read_rpcs)
        registry.add("metadata.client.nodes_fetched",
                     client.metadata_nodes_fetched)
        registry.add("metadata.client.put_rpcs", client.metadata_put_rpcs)
        registry.add("metadata.client.latest_rpcs", client.latest_rpcs)
        registry.add("metadata.client.latest_rpcs_elided",
                     client.latest_rpcs_elided)
        registry.add("metadata.client.plan_nodes_absorbed",
                     client.plan_nodes_absorbed)
        registry.add("metadata.client.cache_primed_nodes",
                     client.cache_primed_nodes)
        registry.add("metadata.client.prefetched_nodes",
                     client.metadata_prefetched_nodes)
        registry.add("metadata.client.write_control_rpcs",
                     client.write_control_rpcs)
        registry.add("cache.shared.client_hits", client.shared_cache_hits)
        registry.add("metadata.client.fetched_lookups",
                     client.metadata_lookup_fetches)
        registry.add("cache.peer.client_hits", client.peer_cache_hits)
        registry.add("cache.peer.rejections", client.peer_rejections)
        registry.add("cache.peer.probe_misses", client.peer_probe_misses)
        registry.add("cache.peer.probe_rpcs", client.peer_probe_rpcs)
        registry.add("metadata.client.coalesced_fetches",
                     client.coalesced_fetches)
        cache = client.metadata_cache
        if cache is None:
            all_private = False
            continue
        registry.add("metadata.cache.lookups", cache.stats.lookups)
        registry.add("metadata.cache.hits", cache.stats.hits)
        registry.add("metadata.cache.misses", cache.stats.misses)
        registry.add("metadata.cache.insertions", cache.stats.insertions)
        registry.add("metadata.cache.evictions", cache.stats.evictions)
        coalescer = client.coalescer
        if coalescer is not None:
            for key, value in coalescer.stats.snapshot().items():
                if key == "coalescing_factor":
                    registry.set("coalescer.coalescing_factor", value)
                else:
                    registry.add(f"coalescer.{key}", value)
    if all_private:
        # the peer part is 0 without the cooperative tier, so the identity
        # reduces to the original three-way partition when it is disabled
        registry.register_identity(
            "metadata.lookup_partition",
            total="metadata.cache.lookups",
            parts=("metadata.cache.hits", "cache.shared.client_hits",
                   "cache.peer.client_hits",
                   "metadata.client.fetched_lookups"))


def collect_shared_cache(registry: "MetricsRegistry",
                         deployment: "BlobSeerDeployment") -> None:
    """Shared-tier totals across every node cache service."""
    totals = deployment.shared_cache_stats()
    registry.add("cache.shared.hits", totals["hits"])
    registry.add("cache.shared.misses", totals["misses"])
    registry.add("cache.shared.lookups", totals["hits"] + totals["misses"])
    registry.add("cache.shared.insertions", totals["insertions"])
    registry.add("cache.shared.evictions", totals["evictions"])
    registry.add("cache.shared.unpublished_rejections",
                 totals["unpublished_rejections"])
    registry.add("cache.shared.capacity_rejections",
                 totals["capacity_rejections"])
    registry.add("cache.shared.coalesced_fetches",
                 totals["coalesced_fetches"])
    registry.set("cache.shared.services", totals["services"])
    registry.set("cache.shared.entries", totals["entries"])
    registry.register_identity(
        "cache.shared.partition",
        total="cache.shared.lookups",
        parts=("cache.shared.hits", "cache.shared.misses"))


def collect_coop_cache(registry: "MetricsRegistry",
                       deployment: "BlobSeerDeployment") -> None:
    """Cooperative cross-node tier totals across every peer service.

    Remote probes answer through the stat-free ``peek`` path, so the
    shared tier's own hit/miss partition is untouched — the peer services
    carry their own served-lookup partition, registered here.
    """
    totals = deployment.coop_stats()
    registry.add("cache.peer.served_hits", totals["served_hits"])
    registry.add("cache.peer.served_misses", totals["served_misses"])
    registry.add("cache.peer.served_lookups",
                 totals["served_hits"] + totals["served_misses"])
    registry.add("cache.peer.read_throughs", totals["read_throughs"])
    registry.add("cache.peer.unavailable_probes",
                 totals["unavailable_probes"])
    registry.add("cache.peer.served_probe_rpcs", totals["probe_rpcs"])
    registry.set("cache.peer.services", totals["services"])
    registry.register_identity(
        "cache.peer.partition",
        total="cache.peer.served_lookups",
        parts=("cache.peer.served_hits", "cache.peer.served_misses"))


def collect_deployment(registry: "MetricsRegistry",
                       deployment: "BlobSeerDeployment") -> None:
    """Server-side storage counters under their canonical (drift-free)
    names; includes the shared-cache totals."""
    stats = deployment.stats()
    # point-in-time quantities are gauges; everything else accumulates
    gauges = {"metadata_nodes", "providers", "chunks", "stored_bytes",
              "load_imbalance"}
    for legacy, canonical in DEPRECATED_STAT_ALIASES.items():
        value = stats[legacy]
        if legacy in gauges:
            registry.set(canonical, value)
        else:
            registry.add(canonical, value)
    collect_shared_cache(registry, deployment)
    collect_coop_cache(registry, deployment)


def collect_collective(registry: "MetricsRegistry",
                       drivers: Iterable["VersioningDriver"]) -> None:
    """Collective-buffering and collective-read counters across ranks."""
    for driver in drivers:
        for key, value in driver.aggregator.stats.snapshot().items():
            registry.add(f"collective.write.{key}", value)
        for key, value in driver.reader.stats.snapshot().items():
            registry.add(f"collective.read.{key}", value)


def collect_comms(registry: "MetricsRegistry",
                  comms: Iterable["Communicator"]) -> None:
    """MPI communicator traffic (simulated collectives)."""
    for comm in comms:
        registry.add("mpi.bytes_moved", comm.bytes_moved)
        registry.add("mpi.collectives_completed", comm.collectives_completed)


def collect_cluster(registry: "MetricsRegistry",
                    cluster: "Cluster") -> None:
    """Transport-level totals: network, RPC, disks."""
    stats = cluster.stats()
    registry.set("cluster.nodes", stats["nodes"])
    registry.add("net.bytes", stats["network_bytes"])
    registry.add("net.messages", stats["network_messages"])
    registry.add("rpc.calls", stats["rpc_calls"])
    registry.add("disk.bytes", stats["disk_bytes"])
    registry.add("disk.operations", stats["disk_operations"])
    if cluster.obs.link_telemetry is not None:
        collect_link_telemetry(registry, cluster.obs.link_telemetry)


def collect_link_telemetry(registry: "MetricsRegistry",
                           telemetry: "LinkTelemetry") -> None:
    """Per-link rollups from the queued network model's samples."""
    totals = telemetry.totals()
    registry.set("net.link.links", totals["links"])
    registry.add("net.link.reservations", totals["reservations"])
    registry.add("net.link.bytes", totals["bytes"])
    registry.add("net.link.codel_marks", totals["codel_marks"])
    registry.set("net.link.max_queue_delay_s", totals["max_queue_delay_s"])
    for name in sorted(telemetry.samples):
        registry.set(f"net.link.{name}.utilization",
                     round(telemetry.utilization(name), 6))


# ----------------------------------------------------------------------
# the one-call form
# ----------------------------------------------------------------------
def collect_all(registry: "MetricsRegistry", *,
                cluster: "Cluster" = None,
                deployment: "BlobSeerDeployment" = None,
                clients: Iterable["BlobClient"] = (),
                drivers: Iterable["VersioningDriver"] = (),
                comms: Iterable["Communicator"] = (),
                complete_clients: bool = False) -> "MetricsRegistry":
    """Collect every surface handed in; returns the registry for chaining.

    ``complete_clients=True`` attests that ``clients`` holds *every*
    client that attached to ``deployment`` — only then can the
    cross-surface fall-through identity (shared-tier lookups == client
    lookups that missed their private tier) be registered, since a
    missing client would contribute shared-tier lookups with no matching
    client-side counters.
    """
    clients = list(clients)
    drivers = list(drivers)
    if drivers and not clients:
        clients = [driver.client for driver in drivers]
    if clients:
        collect_clients(registry, clients)
    if drivers:
        collect_collective(registry, drivers)
    if comms:
        collect_comms(registry, comms)
    if deployment is not None:
        collect_deployment(registry, deployment)
    if cluster is not None:
        collect_cluster(registry, cluster)
    if complete_clients and deployment is not None and clients \
            and all(client.shared_cache is not None for client in clients):
        # without a shared tier a private miss skips straight to the
        # provider fetch, so there is no fall-through to partition.  The
        # peer part is 0 when the cooperative tier is off, reducing to
        # the original two-way fall-through
        registry.register_identity(
            "cache.shared.fallthrough",
            total="cache.shared.lookups",
            parts=("cache.shared.client_hits",
                   "cache.peer.client_hits",
                   "metadata.client.fetched_lookups"))
        if deployment.coop_directory is not None:
            # cross-surface check on the cooperative tier itself: every
            # lookup a peer service answered was either admitted by the
            # receiving client's watermark gate or rejected by it
            registry.register_identity(
                "cache.peer.crosscheck",
                total="cache.peer.served_hits",
                parts=("cache.peer.client_hits", "cache.peer.rejections"))
    return registry


def deprecated_stats_view(registry: "MetricsRegistry") -> Dict[str, object]:
    """Legacy ``deployment.stats()``-shaped dict read back from a
    registry — the bridge for consumers still keyed on the old names."""
    return {legacy: registry.get(canonical, 0)
            for legacy, canonical in DEPRECATED_STAT_ALIASES.items()}
