"""Command-line front end for the observability analysis tier.

``python -m repro.obs diff A B``
    Compare two registry snapshots / ``BENCH_*.json`` artifacts with
    per-metric tolerance bands (see :mod:`repro.obs.diff`); exits 1 on
    regression — the CI perf-regression gate.

``python -m repro.obs flight --ranks 8 --out flight.json``
    Run a small queued collective job with the always-on flight recorder
    and dump the ring — the CI flight-dump artifact.

``python -m repro.obs critpath --ranks 8 --out critpath.json``
    Trace the same job and write the per-operation critical-path layer
    breakdown (:func:`repro.obs.critpath.operation_report`).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .diff import (DEFAULT_IGNORE_PATTERNS, DEFAULT_WALL_BAND,
                   DEFAULT_WALL_PATTERNS, compare_files, write_report)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Observability analysis: artifact diffs, flight dumps, "
                    "critical-path reports.")
    sub = parser.add_subparsers(dest="command", required=True)

    diff = sub.add_parser(
        "diff", help="compare two snapshot/BENCH artifacts; exit 1 on "
                     "regression")
    diff.add_argument("baseline", help="baseline artifact (JSON)")
    diff.add_argument("current", help="current artifact (JSON)")
    diff.add_argument("--wall-band", type=float, default=DEFAULT_WALL_BAND,
                      help="multiplicative tolerance for wall-clock-family "
                           "values (default %(default)s)")
    diff.add_argument("--ignore", action="append", default=[],
                      metavar="PATTERN",
                      help="extra dotted-path glob to skip (repeatable)")
    diff.add_argument("--band", action="append", default=[],
                      metavar="PATTERN",
                      help="extra dotted-path glob to treat as wall-family "
                           "(repeatable)")
    diff.add_argument("--report", metavar="PATH",
                      help="write the JSON diff report here")

    flight = sub.add_parser(
        "flight", help="run a small collective job and dump the flight "
                       "recorder ring")
    _add_job_arguments(flight)
    flight.add_argument("--out", required=True, metavar="PATH",
                        help="flight-dump JSON path")

    crit = sub.add_parser(
        "critpath", help="trace a small collective job and write its "
                         "critical-path layer breakdown")
    _add_job_arguments(crit)
    crit.add_argument("--out", required=True, metavar="PATH",
                      help="critical-path report JSON path")
    return parser


def _add_job_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--ranks", type=int, default=8,
                        help="MPI ranks (default %(default)s)")
    parser.add_argument("--network", default="queued",
                        choices=("simple", "queued"),
                        help="network model (default %(default)s)")
    parser.add_argument("--seed", type=int, default=0,
                        help="cluster seed (default %(default)s)")


def _run_diff(args: argparse.Namespace) -> int:
    report = compare_files(
        args.baseline, args.current,
        wall_band=args.wall_band,
        wall_patterns=tuple(DEFAULT_WALL_PATTERNS) + tuple(args.band),
        ignore_patterns=tuple(DEFAULT_IGNORE_PATTERNS) + tuple(args.ignore))
    if args.report:
        write_report(report, args.report)
    print(f"compared {report['compared']} metrics "
          f"(wall band {report['wall_band']}x): {report['status']}")
    for note in report["notes"]:
        print(f"  note: {note}")
    for regression in report["regressions"]:
        print(f"  REGRESSION: {regression}")
    return 1 if report["regressions"] else 0


def _run_job(args: argparse.Namespace, *, tracing: bool,
             flight_path: Optional[str], critpath_path: Optional[str],
             ) -> int:
    # imported lazily: the diff subcommand must not pull the simulator in
    from repro.bench.simcore import run_collective_io_point
    from repro.cluster import ClusterConfig

    config = ClusterConfig(network_model=args.network, tracing=tracing)
    row = run_collective_io_point(
        num_ranks=args.ranks, blocks_per_rank=4, block_size=4096,
        read_rounds=1, num_aggregators=max(1, args.ranks // 4),
        config=config, seed=args.seed,
        flight_path=flight_path, critpath_path=critpath_path)
    summary = {"ranks": args.ranks, "network": args.network,
               "sim_elapsed_s": row["sim_elapsed_s"],
               "processed_events": row["processed_events"]}
    print(json.dumps(summary, sort_keys=True))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "diff":
        return _run_diff(args)
    if args.command == "flight":
        return _run_job(args, tracing=False, flight_path=args.out,
                        critpath_path=None)
    if args.command == "critpath":
        return _run_job(args, tracing=True, flight_path=None,
                        critpath_path=args.out)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover - module entry
    sys.exit(main())
