"""Chrome trace-event JSON export and schema validation.

The exporter maps spans onto the trace-event format's process/thread
lanes: one *process* per lane group (ranks, nodes, shards, links) and one
*thread* per lane, named through ``"M"`` metadata events — load the file
in ``chrome://tracing`` or https://ui.perfetto.dev and every rank, shard
and link renders as its own labelled track.  Spans become ``"X"``
(complete) events with microsecond timestamps taken from the simulation
clock; link telemetry becomes ``"C"`` (counter) tracks.  Everything about
the output is deterministic: lane numbering is sorted, span order is
span-id order, and no wall-clock value appears anywhere — the same run
produces the same bytes.

:func:`validate_chrome_trace` is the schema gate the test-suite and the
CI trace-smoke job run over exported files.
"""

from __future__ import annotations

import json
from typing import Dict, List, Tuple

__all__ = ["to_chrome_trace", "dump_chrome_trace", "validate_chrome_trace",
           "span_chains"]

#: lane groups in display order; unknown groups sort after, alphabetically
_GROUP_ORDER = ("rank", "node", "shard", "link")


def _lane_map(lanes) -> Dict[Tuple[str, str], Tuple[int, int]]:
    """Deterministic ``lane -> (pid, tid)`` assignment."""
    groups: Dict[str, List[str]] = {}
    for group, name in lanes:
        names = groups.setdefault(group, [])
        if name not in names:
            names.append(name)
    ordered = [group for group in _GROUP_ORDER if group in groups]
    ordered += sorted(group for group in groups if group not in _GROUP_ORDER)
    mapping: Dict[Tuple[str, str], Tuple[int, int]] = {}
    for pid, group in enumerate(ordered, start=1):
        # sort short-names-first so rank "sc2" precedes "sc10"
        for tid, name in enumerate(sorted(groups[group],
                                          key=lambda n: (len(n), n)),
                                   start=1):
            mapping[(group, name)] = (pid, tid)
    return mapping


def _us(seconds: float) -> float:
    return round(seconds * 1e6, 3)


def to_chrome_trace(tracer, telemetry=None) -> Dict:
    """Render a tracer (and optional link telemetry) as a trace-event dict.

    Open spans are skipped (a finished run has none; the validator treats
    their presence in ``tracer.spans`` as the caller's bug to assert on).
    """
    spans = tracer.finished_spans()
    lanes = [span.lane for span in spans]
    counter_samples = list(getattr(tracer, "counter_samples", ()))
    lanes += [lane for _ts, lane, _series, _values in counter_samples]
    if telemetry is not None:
        lanes += [("link", name) for name in telemetry.samples]
    mapping = _lane_map(lanes)

    events: List[Dict] = []
    for (group, name), (pid, tid) in sorted(mapping.items(),
                                            key=lambda item: item[1]):
        if tid == 1:
            events.append({"ph": "M", "name": "process_name", "pid": pid,
                           "tid": 0, "args": {"name": f"{group}s"}})
        events.append({"ph": "M", "name": "thread_name", "pid": pid,
                       "tid": tid, "args": {"name": f"{group}:{name}"}})

    for span in spans:
        pid, tid = mapping[span.lane]
        args = dict(span.args or {})
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        if span.flow:
            args["flow"] = True
        events.append({
            "ph": "X", "name": span.name, "cat": span.cat,
            "ts": _us(span.start), "dur": _us(span.end - span.start),
            "pid": pid, "tid": tid, "args": args,
        })

    for ts, lane, series, values in counter_samples:
        pid, tid = mapping[lane]
        events.append({
            "ph": "C", "name": f"{series} {lane[1]}", "ts": _us(ts),
            "pid": pid, "tid": 0, "args": dict(values),
        })
    if telemetry is not None:
        for name in sorted(telemetry.samples):
            pid, tid = mapping[("link", name)]
            for sample in telemetry.samples[name]:
                events.append({
                    "ph": "C", "name": f"queue_delay_us {name}",
                    "ts": _us(sample.ts), "pid": pid, "tid": 0,
                    "args": {"queue_delay_us": _us(sample.queue_delay)},
                })

    return {"traceEvents": events, "displayTimeUnit": "ms"}


def dump_chrome_trace(tracer, path, telemetry=None) -> Dict:
    trace = to_chrome_trace(tracer, telemetry=telemetry)
    with open(path, "w") as handle:
        json.dump(trace, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return trace


# ----------------------------------------------------------------------
def validate_chrome_trace(trace) -> List[str]:
    """Check a trace-event dict (or JSON string) against the schema.

    Returns one message per violation; an empty list means the trace is
    loadable by ``chrome://tracing``/Perfetto and causally well-formed:
    every event carries the required fields, every ``X`` span has a
    non-negative duration and a unique ``span_id``, and every
    ``parent_id`` refers to a span in the same file.
    """
    problems: List[str] = []
    if isinstance(trace, (str, bytes)):
        try:
            trace = json.loads(trace)
        except ValueError as exc:
            return [f"not JSON: {exc}"]
    if not isinstance(trace, dict) or "traceEvents" not in trace:
        return ["top level must be an object with a traceEvents array"]
    events = trace["traceEvents"]
    if not isinstance(events, list):
        return ["traceEvents must be an array"]

    span_ids = set()
    parent_refs: List[Tuple[int, int]] = []
    for index, event in enumerate(events):
        where = f"event {index}"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = event.get("ph")
        if ph not in ("X", "C", "M"):
            problems.append(f"{where}: unsupported ph {ph!r}")
            continue
        for field in ("name", "pid", "tid"):
            if field not in event:
                problems.append(f"{where}: missing {field!r}")
        if ph == "M":
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"{where}: bad ts {ts!r}")
        if ph == "C":
            if not isinstance(event.get("args"), dict):
                problems.append(f"{where}: counter event needs args")
            continue
        dur = event.get("dur")
        if not isinstance(dur, (int, float)) or dur < 0:
            problems.append(f"{where}: bad dur {dur!r}")
        args = event.get("args")
        if not isinstance(args, dict) or "span_id" not in args:
            problems.append(f"{where}: X event needs args.span_id")
            continue
        span_id = args["span_id"]
        if not isinstance(span_id, int):
            problems.append(f"{where}: span_id must be an int")
            continue
        if span_id in span_ids:
            problems.append(f"{where}: duplicate span_id {span_id}")
        span_ids.add(span_id)
        parent = args.get("parent_id")
        if parent is not None:
            if not isinstance(parent, int):
                problems.append(f"{where}: parent_id must be an int")
            else:
                parent_refs.append((index, parent))

    for index, parent in parent_refs:
        if parent not in span_ids:
            problems.append(
                f"event {index}: parent_id {parent} matches no span")
    return problems


# ----------------------------------------------------------------------
def span_chains(tracer) -> Dict[int, List]:
    """``span_id -> [root, ..., span]`` ancestry chains (test helper:
    the acceptance criterion counts layers as the longest chain).

    Chains are inserted in ``(start, span_id)`` order — timestamp-major
    with the span id as a stable tiebreak — so consumers iterating the
    dict (critpath reports, chain dumps) see the same order however the
    spans were appended to the tracer.
    """
    by_id = {span.span_id: span for span in tracer.spans}
    chains: Dict[int, List] = {}
    resolved: Dict[int, List] = {}

    def chain(span):
        cached = resolved.get(span.span_id)
        if cached is not None:
            return cached
        if span.parent_id is None or span.parent_id not in by_id:
            result = [span]
        else:
            result = chain(by_id[span.parent_id]) + [span]
        resolved[span.span_id] = result
        return result

    for span in sorted(tracer.spans,
                       key=lambda span: (span.start, span.span_id)):
        chains[span.span_id] = chain(span)
    return chains
