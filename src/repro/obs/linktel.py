"""Per-link telemetry sampled on the queued network model's link events.

Every :meth:`Link.reserve` under an observed network appends one sample:
the reservation instant, how long the transfer will sit behind the link's
FIFO backlog (the *standing queue* CoDel watches), the bytes requested and
the link's cumulative counters.  Sampling happens on events the simulation
already processes — no extra events, no polling process — so enabling it
never perturbs the timeline.

The samples feed three consumers: utilization / queue-depth summaries per
link (:meth:`LinkTelemetry.report`), ``net.link.*`` registry metrics
(:func:`repro.obs.views.collect_network`), and per-link counter tracks in
the Chrome trace export (:func:`repro.obs.export.to_chrome_trace`).
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple

__all__ = ["LinkSample", "LinkTelemetry"]


class LinkSample(NamedTuple):
    #: simulation time the reservation was made
    ts: float
    #: seconds the transfer waits behind the link's existing backlog
    queue_delay: float
    #: bytes of this reservation
    nbytes: int
    #: cumulative link counters *after* the reservation
    bytes_transferred: int
    busy_time: float
    codel_marks: int
    max_standing_delay: float


class LinkTelemetry:
    """Collects :class:`LinkSample` timelines keyed by link name."""

    def __init__(self, sim):
        self.sim = sim
        self.samples: Dict[str, List[LinkSample]] = {}

    def record(self, link, now: float, queue_delay: float,
               nbytes: int) -> None:
        self.samples.setdefault(link.name, []).append(LinkSample(
            now, queue_delay, nbytes, link.bytes_transferred,
            link.busy_time, link.codel_marks, link.max_standing_delay))

    # ------------------------------------------------------------------
    def utilization(self, name: str) -> float:
        """Busy fraction of the link over the sampled window (last
        cumulative busy_time over the elapsed simulation time)."""
        samples = self.samples.get(name)
        if not samples:
            return 0.0
        elapsed = self.sim.now
        return samples[-1].busy_time / elapsed if elapsed > 0 else 0.0

    def report(self) -> Dict[str, Dict[str, float]]:
        """Deterministically ordered per-link summary."""
        out: Dict[str, Dict[str, float]] = {}
        for name in sorted(self.samples):
            samples = self.samples[name]
            last = samples[-1]
            delays = [sample.queue_delay for sample in samples]
            out[name] = {
                "reservations": len(samples),
                "bytes": last.bytes_transferred,
                "busy_time_s": round(last.busy_time, 9),
                "utilization": round(self.utilization(name), 6),
                "max_queue_delay_s": round(max(delays), 9),
                "mean_queue_delay_s": round(sum(delays) / len(delays), 9),
                "codel_marks": last.codel_marks,
                "max_standing_delay_s": round(last.max_standing_delay, 9),
            }
        return out

    def totals(self) -> Dict[str, float]:
        """Aggregates over every sampled link (``net.link.*`` metrics)."""
        report = self.report()
        return {
            "links": len(report),
            "reservations": sum(r["reservations"] for r in report.values()),
            "bytes": sum(r["bytes"] for r in report.values()),
            "codel_marks": sum(r["codel_marks"] for r in report.values()),
            "max_queue_delay_s": max(
                (r["max_queue_delay_s"] for r in report.values()),
                default=0.0),
        }
