"""Simulation-clock-native observability: spans, metrics, link telemetry.

Three pieces, all driven by the *simulation* clock (never wall time, so
every artifact is byte-stable across runs and usable as replay evidence):

* :mod:`repro.obs.trace` — causal spans threaded through the stack
  (``File.write_at_all`` → collective exchange phases → coalescer batch →
  commit-engine stages → per-shard RPC → network link transfer),
  exportable as Chrome trace-event JSON (:mod:`repro.obs.export`).
* :mod:`repro.obs.registry` — a central :class:`MetricsRegistry`
  (counters, gauges, sim-time-weighted series) behind stable dotted
  names; :mod:`repro.obs.views` absorbs the stack's scattered stats
  surfaces into it and re-asserts their partition identities.
* :mod:`repro.obs.linktel` — per-link utilization / queueing / CoDel
  timelines sampled on the ``"queued"`` network model's link events.

Tracing is **zero-cost when disabled**: every call site guards on a plain
attribute (``if ctx is not None`` / ``if tracer is not None``), and the
default :class:`~repro.cluster.config.ClusterConfig` leaves it off.
"""

from repro.obs.registry import MetricsRegistry
from repro.obs.trace import NULL_TRACER, Span, TraceContext, Tracer
from repro.obs.linktel import LinkTelemetry

__all__ = [
    "LinkTelemetry",
    "MetricsRegistry",
    "NULL_TRACER",
    "Observability",
    "Span",
    "TraceContext",
    "Tracer",
]


class Observability:
    """Per-cluster holder of the tracer, metrics registry and telemetry.

    Created by :class:`~repro.cluster.cluster.Cluster` from
    ``ClusterConfig.tracing``; the registry always exists (metrics views
    are pull-based and cost nothing until collected), while the tracer and
    link telemetry only materialize when tracing is enabled — disabled
    runs hold the shared :data:`NULL_TRACER` and ``link_telemetry=None``,
    which is what every instrumented call site guards on.
    """

    def __init__(self, sim, tracing: bool = False,
                 link_telemetry: bool = None):
        self.sim = sim
        self.registry = MetricsRegistry(clock=lambda: sim.now)
        self.tracer = Tracer(clock=lambda: sim.now) if tracing \
            else NULL_TRACER
        sample_links = tracing if link_telemetry is None else link_telemetry
        self.link_telemetry = LinkTelemetry(sim) if sample_links else None

    @property
    def tracing(self) -> bool:
        return self.tracer.enabled
