"""Simulation-clock-native observability: spans, metrics, link telemetry.

All pieces are driven by the *simulation* clock (never wall time, so
every artifact is byte-stable across runs and usable as replay evidence):

* :mod:`repro.obs.trace` — causal spans threaded through the stack
  (``File.write_at_all`` → collective exchange phases → coalescer batch →
  commit-engine stages → per-shard RPC → network link transfer),
  exportable as Chrome trace-event JSON (:mod:`repro.obs.export`).
* :mod:`repro.obs.registry` — a central :class:`MetricsRegistry`
  (counters, gauges, sim-time-weighted series, latency digests) behind
  stable dotted names; :mod:`repro.obs.views` absorbs the stack's
  scattered stats surfaces into it and re-asserts their partition
  identities.
* :mod:`repro.obs.linktel` — per-link utilization / queueing / CoDel
  timelines sampled on the ``"queued"`` network model's link events.
* :mod:`repro.obs.digest` — deterministic fixed-log-bucket latency
  histograms (p50/p95/p99/max) tapped from RPC round-trips, link queue
  delays and File-layer operations.
* :mod:`repro.obs.flight` — an always-on bounded ring buffer of recent
  RPC/operation events, cheap enough to default on, dumped into fuzzer
  triage bundles.
* :mod:`repro.obs.critpath` — span-DAG critical-path extraction with
  exact per-layer time attribution.
* :mod:`repro.obs.diff` — cross-run artifact comparison with per-metric
  tolerance bands (``python -m repro.obs diff``).

Tracing and digests are **zero-cost when disabled**: every call site
guards on a plain attribute (``if ctx is not None`` / ``if digests is
not None``), and the default :class:`~repro.cluster.config.ClusterConfig`
leaves them off.  The flight recorder defaults *on* — its per-event cost
is one deque append, and the behaviour-neutrality test pins that runs
with the recorder off are bit-identical.
"""

from repro.obs.critpath import (LAYERS, SpanDag, critical_path,
                                layer_breakdown, operation_report)
from repro.obs.digest import DigestTaps, LatencyDigest, digest_columns
from repro.obs.flight import DEFAULT_FLIGHT_CAPACITY, FlightRecorder
from repro.obs.linktel import LinkTelemetry
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import NULL_TRACER, Span, TraceContext, Tracer

__all__ = [
    "DEFAULT_FLIGHT_CAPACITY",
    "DigestTaps",
    "FlightRecorder",
    "LAYERS",
    "LatencyDigest",
    "LinkTelemetry",
    "MetricsRegistry",
    "NULL_TRACER",
    "Observability",
    "Span",
    "SpanDag",
    "TraceContext",
    "Tracer",
    "critical_path",
    "digest_columns",
    "layer_breakdown",
    "operation_report",
]


class Observability:
    """Per-cluster holder of tracer, registry, telemetry, digests, flight.

    Created by :class:`~repro.cluster.cluster.Cluster` from the
    observability knobs on :class:`~repro.cluster.config.ClusterConfig`;
    the registry always exists (metrics views are pull-based and cost
    nothing until collected), while the tracer, link telemetry and digest
    taps only materialize when enabled — disabled runs hold the shared
    :data:`NULL_TRACER` / ``None``, which is what every instrumented call
    site guards on.  The flight recorder is independent of tracing and on
    by default; it never touches the registry, so enabling it cannot
    perturb metrics snapshots.
    """

    def __init__(self, sim, tracing: bool = False,
                 link_telemetry: bool = None,
                 latency_digests: bool = False,
                 flight_recorder: bool = True,
                 flight_capacity: int = DEFAULT_FLIGHT_CAPACITY):
        self.sim = sim
        self.registry = MetricsRegistry(clock=lambda: sim.now)
        self.tracer = Tracer(clock=lambda: sim.now) if tracing \
            else NULL_TRACER
        sample_links = tracing if link_telemetry is None else link_telemetry
        self.link_telemetry = LinkTelemetry(sim) if sample_links else None
        self.digests = DigestTaps(self.registry) if latency_digests else None
        self.flight = FlightRecorder(flight_capacity) if flight_recorder \
            else None

    @property
    def tracing(self) -> bool:
        return self.tracer.enabled
