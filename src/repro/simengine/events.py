"""Event primitives for the discrete-event engine.

An :class:`Event` is a one-shot occurrence.  It starts *pending*, is
*triggered* exactly once (either successfully with a value, or with a
failure carrying an exception), gets scheduled on the simulator queue, and is
finally *processed* when the simulator pops it and runs its callbacks.

Processes (see :mod:`repro.simengine.process`) suspend by yielding events;
the process object registers itself as a callback and is resumed with the
event's value (or the exception is thrown into the generator).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, Optional, TYPE_CHECKING

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simengine.simulator import Simulator


class _Pending:
    """Sentinel for "this event has not been triggered yet"."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<PENDING>"


PENDING = _Pending()


class Event:
    """A one-shot event living on a :class:`~repro.simengine.simulator.Simulator`.

    Parameters
    ----------
    sim:
        The simulator that will eventually process this event.

    Notes
    -----
    The lifecycle is ``pending -> triggered -> processed``.  Calling
    :meth:`succeed` or :meth:`fail` moves the event to *triggered* and puts it
    on the simulator queue at the current simulated time (unless a delay was
    requested through :meth:`Simulator.schedule`).
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_defused")

    #: class-level default; only :class:`Timer` instances can flip this
    _cancelled = False

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: Optional[bool] = None
        self._defused = False

    # -- state inspection -------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once :meth:`succeed` or :meth:`fail` has been called."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once the simulator has run the callbacks."""
        return self.callbacks is None

    @property
    def ok(self) -> Optional[bool]:
        """True if succeeded, False if failed, None while pending."""
        return self._ok

    @property
    def value(self) -> Any:
        """The success value or the failure exception."""
        if self._value is PENDING:
            raise SimulationError(f"{self!r} has not been triggered yet")
        return self._value

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value`` and schedule it."""
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.sim.schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with ``exception`` and schedule it."""
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.sim.schedule(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Mirror the outcome of another (already triggered) event.

        Used as a callback so that chained events propagate success/failure.
        """
        if event._ok:
            self.succeed(event._value)
        else:
            self.fail(event._value)

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Register ``callback(event)`` to run when the event is processed.

        If the event was already processed the callback runs immediately;
        this keeps "wait on an already-completed operation" race-free.
        """
        if self.callbacks is None:
            callback(self)
        else:
            self.callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` units of simulated time in the future."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay!r}")
        super().__init__(sim)
        self.delay = delay
        self._ok = True
        self._value = value
        sim.schedule(self, delay=delay)

    # Timeouts are triggered at construction time; succeed/fail are invalid.
    def succeed(self, value: Any = None) -> "Event":  # pragma: no cover
        raise SimulationError("a Timeout is triggered at construction time")

    def fail(self, exception: BaseException) -> "Event":  # pragma: no cover
        raise SimulationError("a Timeout is triggered at construction time")


class _Sleep(Event):
    """A pooled, engine-internal timeout (see :meth:`Simulator.sleep`).

    Unlike :class:`Timeout`, processed instances are recycled by the
    simulator, so hot paths that sleep millions of times allocate a handful
    of objects.  The contract: a sleep must be yielded immediately by exactly
    one process and never stored, waited on twice, or combined into
    conditions.
    """

    __slots__ = ()

    def __init__(self, sim: "Simulator", value: Any = None):
        self.sim = sim
        self.callbacks = []
        self._value = value
        self._ok = True
        self._defused = False


class Timer(Event):
    """A cancellable one-shot timer (see :meth:`Simulator.call_later`).

    The timer fires ``fn(*args)`` when processed.  :meth:`cancel` is O(1):
    the queue entry stays where it is and is discarded lazily when the
    scheduler encounters it, which is what makes generation-invalidated
    watchdog timers cheap.
    """

    __slots__ = ("_fn", "_args", "_cancelled")

    def __init__(self, sim: "Simulator", fn: Callable[..., Any], args: tuple = ()):
        super().__init__(sim)
        self._fn = fn
        self._args = args
        self._cancelled = False
        self._ok = True
        self._value = None
        self.callbacks.append(self._invoke)

    @property
    def active(self) -> bool:
        """True while the timer is scheduled and not cancelled."""
        return not self._cancelled and self.callbacks is not None

    def cancel(self) -> bool:
        """Cancel the timer; returns False if already fired or cancelled."""
        if self._cancelled or self.callbacks is None:
            return False
        self._cancelled = True
        self.sim._queue.note_cancel()
        return True

    def _invoke(self, _event: Event) -> None:
        self._fn(*self._args)


class Condition(Event):
    """An event that fires when a boolean condition over child events holds.

    Parameters
    ----------
    sim:
        The owning simulator.
    evaluate:
        Callable ``(events, triggered_count) -> bool`` deciding whether the
        condition is satisfied.
    events:
        The child events observed by the condition.

    The condition *fails* as soon as any child fails, mirroring SimPy.
    Its success value is a dict mapping each already-triggered child event to
    its value, so callers can recover individual results.
    """

    def __init__(
        self,
        sim: "Simulator",
        evaluate: Callable[[List[Event], int], bool],
        events: Iterable[Event],
    ):
        super().__init__(sim)
        self._evaluate = evaluate
        self._events = list(events)
        self._count = 0

        for event in self._events:
            if event.sim is not sim:
                raise SimulationError(
                    "all events of a Condition must belong to the same simulator")

        if not self._events:
            # An empty condition is trivially satisfied.
            self.succeed(self._collect())
            return

        for event in self._events:
            event.add_callback(self._check)

    def _collect(self) -> dict:
        return {
            event: event._value
            for event in self._events
            if event.triggered and event._ok
        }

    def _check(self, event: Event) -> None:
        if self.triggered:
            if not event._ok and self._ok is False:
                # the condition already propagated a failure; absorb sibling
                # failures so they do not escalate past whoever handles ours
                event._defused = True
            return
        if not event._ok:
            # the failure is being delivered through the condition (and on to
            # whatever process waits on it), so the child event is handled
            event._defused = True
            self.fail(event._value)
            return
        self._count += 1
        if self._evaluate(self._events, self._count):
            self.succeed(self._collect())


class AllOf(Condition):
    """Condition satisfied when *all* child events have fired successfully."""

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim, lambda evts, count: count >= len(evts), events)


class AnyOf(Condition):
    """Condition satisfied when *any* child event has fired successfully."""

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim, lambda evts, count: count >= 1, events)
