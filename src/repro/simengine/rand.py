"""Deterministic random-number streams.

Simulations must be reproducible run-to-run; at the same time, different
components (each data provider's latency jitter, each client's workload
shuffle) must not share a single RNG whose consumption order would couple
them.  :class:`DeterministicRNG` derives an independent, stable
``numpy.random.Generator`` per *named stream* from a single root seed.

Streams are further grouped into per-subsystem *scopes* so whole families of
draws stay isolated: everything that shapes the workload (offsets, sizes,
placement) lives under the ``"workload"`` scope, everything that only
perturbs costs (queued-network jitter) under ``"network"``, and fault
injection under ``"fault"``, and everything the scenario fuzzer samples
(cluster shapes, workload mixes, injected hostility) under ``"fuzz"``.
Because a scope is just a name prefix, turning the queued network model's
jitter on or off can never change a single workload byte — that invariant
is pinned by a regression test — and the fuzzer drawing one more or one
less sample can never perturb the bytes or timelines of the scenarios it
generates (pinned by the fuzz RNG-isolation suite).
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np

#: conventional per-subsystem scopes (see module docstring)
SCOPE_WORKLOAD = "workload"
SCOPE_NETWORK = "network"
SCOPE_FAULT = "fault"
SCOPE_FUZZ = "fuzz"


class RNGScope:
    """A view of a :class:`DeterministicRNG` that prefixes stream names."""

    __slots__ = ("_rng", "_prefix")

    def __init__(self, rng: "DeterministicRNG", prefix: str):
        self._rng = rng
        self._prefix = prefix

    def stream(self, name: str) -> np.random.Generator:
        return self._rng.stream(f"{self._prefix}:{name}")

    def uniform(self, name: str, low: float = 0.0, high: float = 1.0) -> float:
        return self._rng.uniform(f"{self._prefix}:{name}", low, high)

    def exponential(self, name: str, mean: float) -> float:
        return self._rng.exponential(f"{self._prefix}:{name}", mean)

    def integers(self, name: str, low: int, high: int) -> int:
        return self._rng.integers(f"{self._prefix}:{name}", low, high)

    def shuffled(self, name: str, items):
        return self._rng.shuffled(f"{self._prefix}:{name}", items)


class DeterministicRNG:
    """Factory of named, independent, reproducible random streams."""

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def scope(self, prefix: str) -> RNGScope:
        """A per-subsystem view whose streams live under ``prefix:``."""
        return RNGScope(self, prefix)

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating if needed) the generator for stream ``name``.

        The stream's seed is derived from ``(root seed, name)`` with SHA-256,
        so adding new streams never perturbs existing ones.
        """
        if name not in self._streams:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
            child_seed = int.from_bytes(digest[:8], "little")
            self._streams[name] = np.random.default_rng(child_seed)
        return self._streams[name]

    def uniform(self, name: str, low: float = 0.0, high: float = 1.0) -> float:
        """Draw one uniform sample from the named stream."""
        return float(self.stream(name).uniform(low, high))

    def exponential(self, name: str, mean: float) -> float:
        """Draw one exponential sample with the given mean."""
        return float(self.stream(name).exponential(mean))

    def integers(self, name: str, low: int, high: int) -> int:
        """Draw one integer in ``[low, high)`` from the named stream."""
        return int(self.stream(name).integers(low, high))

    def shuffled(self, name: str, items):
        """Return a new list with ``items`` shuffled by the named stream."""
        result = list(items)
        self.stream(name).shuffle(result)
        return result
