"""Deterministic random-number streams.

Simulations must be reproducible run-to-run; at the same time, different
components (each data provider's latency jitter, each client's workload
shuffle) must not share a single RNG whose consumption order would couple
them.  :class:`DeterministicRNG` derives an independent, stable
``numpy.random.Generator`` per *named stream* from a single root seed.
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np


class DeterministicRNG:
    """Factory of named, independent, reproducible random streams."""

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating if needed) the generator for stream ``name``.

        The stream's seed is derived from ``(root seed, name)`` with SHA-256,
        so adding new streams never perturbs existing ones.
        """
        if name not in self._streams:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
            child_seed = int.from_bytes(digest[:8], "little")
            self._streams[name] = np.random.default_rng(child_seed)
        return self._streams[name]

    def uniform(self, name: str, low: float = 0.0, high: float = 1.0) -> float:
        """Draw one uniform sample from the named stream."""
        return float(self.stream(name).uniform(low, high))

    def exponential(self, name: str, mean: float) -> float:
        """Draw one exponential sample with the given mean."""
        return float(self.stream(name).exponential(mean))

    def integers(self, name: str, low: int, high: int) -> int:
        """Draw one integer in ``[low, high)`` from the named stream."""
        return int(self.stream(name).integers(low, high))

    def shuffled(self, name: str, items):
        """Return a new list with ``items`` shuffled by the named stream."""
        result = list(items)
        self.stream(name).shuffle(result)
        return result
