"""Generator-based simulated processes.

A process wraps a Python generator.  Each ``yield`` hands an
:class:`~repro.simengine.events.Event` back to the engine; the process is
suspended until that event is processed, at which point the event's value is
sent into the generator (or its exception thrown into it).  When the
generator returns, the process — which is itself an event — succeeds with the
return value, so other processes can wait for it or collect its result.
"""

from __future__ import annotations

from typing import Any, Generator, Optional, TYPE_CHECKING

from repro.errors import ProcessInterrupted, SimulationError
from repro.simengine.events import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simengine.simulator import Simulator


class Process(Event):
    """A running simulated process (and the event of its termination).

    Parameters
    ----------
    sim:
        Owning simulator.
    generator:
        The generator to drive.  It must yield :class:`Event` instances.
    name:
        Optional human-readable name used in error messages and tracing.
    """

    __slots__ = ("_generator", "name", "_target")

    def __init__(self, sim: "Simulator", generator: Generator,
                 name: Optional[str] = None):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError(
                f"Process requires a generator, got {type(generator).__name__}; "
                "did you forget to call the process function?")
        super().__init__(sim)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        #: the event this process is currently waiting on (None if not started
        #: or already terminated)
        self._target: Optional[Event] = None

        # Kick-start the process via an immediately-triggered bootstrap event.
        bootstrap = Event(sim)
        bootstrap._ok = True
        bootstrap._value = None
        bootstrap.callbacks.append(self._resume)
        sim.schedule(bootstrap, priority=sim.PRIORITY_URGENT)

    # ------------------------------------------------------------------
    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`ProcessInterrupted` into the process at its next step.

        The interrupt is delivered asynchronously (as an urgent event) so that
        the caller's own execution is not re-entered.
        """
        if self.triggered:
            raise SimulationError(f"cannot interrupt terminated process {self.name!r}")

        interrupt_event = Event(self.sim)
        interrupt_event._ok = False
        interrupt_event._value = ProcessInterrupted(cause)
        interrupt_event._defused = True
        interrupt_event.callbacks.append(self._resume)
        self.sim.schedule(interrupt_event, priority=self.sim.PRIORITY_URGENT)

    # ------------------------------------------------------------------
    def _resume(self, event: Event) -> None:
        """Drive the generator one step with the outcome of ``event``."""
        if self.triggered:
            # A stale wake-up (e.g. an interrupt racing with termination).
            return

        self._target = None
        try:
            if event._ok:
                yielded = self._generator.send(event._value)
            else:
                # Mark the failure as handled: it is being delivered to a
                # process, which may catch it.
                event._defused = True
                yielded = self._generator.throw(event._value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self.fail(exc)
            return

        if not isinstance(yielded, Event):
            error = SimulationError(
                f"process {self.name!r} yielded {yielded!r}; "
                "processes must yield Event instances")
            try:
                self._generator.throw(error)
            except StopIteration as stop:
                self.succeed(stop.value)
            except BaseException as exc:
                self.fail(exc)
            return

        if yielded.sim is not self.sim:
            self.fail(SimulationError(
                f"process {self.name!r} yielded an event from another simulator"))
            return

        self._target = yielded
        yielded.add_callback(self._resume)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.triggered else "alive"
        return f"<Process {self.name!r} {state}>"


class Fanout(Event):
    """Run several generators concurrently as one scheduler transaction.

    Semantically ``AllOf([sim.process(g) for g in generators])`` — every
    branch starts at the current instant in list order, the fanout succeeds
    with the list of branch return values once all complete, and fails as
    soon as any branch fails (later sibling failures are absorbed, exactly
    like a condition's) — but the K bootstrap events, K process-termination
    events and the condition bookkeeping collapse into one bootstrap event
    plus this event.  This is the shape of every RPC fan-out: one client
    hitting K shards and continuing when the slowest answers.
    """

    __slots__ = ("results", "_remaining")

    def __init__(self, sim: "Simulator", generators):
        super().__init__(sim)
        branches = [_Branch(self, index, generator)
                    for index, generator in enumerate(generators)]
        self.results: list = [None] * len(branches)
        self._remaining = len(branches)
        if not branches:
            self.succeed(self.results)
            return
        bootstrap = Event(sim)
        bootstrap._ok = True
        bootstrap._value = None
        for branch in branches:
            bootstrap.callbacks.append(branch._step)
        sim.schedule(bootstrap, priority=sim.PRIORITY_URGENT)

    def _done(self, index: int, value: Any) -> None:
        self.results[index] = value
        self._remaining -= 1
        if self._remaining == 0 and not self.triggered:
            self.succeed(self.results)

    def _failed(self, exc: BaseException) -> None:
        # first failure propagates to the waiter; siblings' failures after
        # that are absorbed, mirroring Condition._check
        if not self.triggered:
            self.fail(exc)


class _Branch:
    """One generator driven inside a :class:`Fanout` (not itself an event)."""

    __slots__ = ("_fanout", "_index", "_generator")

    def __init__(self, fanout: Fanout, index: int, generator: Generator):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError(
                f"Fanout requires generators, got {type(generator).__name__}")
        self._fanout = fanout
        self._index = index
        self._generator = generator

    def _step(self, event: Event) -> None:
        try:
            if event._ok:
                yielded = self._generator.send(event._value)
            else:
                event._defused = True
                yielded = self._generator.throw(event._value)
        except StopIteration as stop:
            self._fanout._done(self._index, stop.value)
            return
        except BaseException as exc:
            self._fanout._failed(exc)
            return
        if not isinstance(yielded, Event) or yielded.sim is not self._fanout.sim:
            self._fanout._failed(SimulationError(
                f"fanout branch yielded {yielded!r}; branches must yield "
                "events of the owning simulator"))
            return
        yielded.add_callback(self._step)
