"""Generator-based simulated processes.

A process wraps a Python generator.  Each ``yield`` hands an
:class:`~repro.simengine.events.Event` back to the engine; the process is
suspended until that event is processed, at which point the event's value is
sent into the generator (or its exception thrown into it).  When the
generator returns, the process — which is itself an event — succeeds with the
return value, so other processes can wait for it or collect its result.
"""

from __future__ import annotations

from typing import Any, Generator, Optional, TYPE_CHECKING

from repro.errors import ProcessInterrupted, SimulationError
from repro.simengine.events import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simengine.simulator import Simulator


class Process(Event):
    """A running simulated process (and the event of its termination).

    Parameters
    ----------
    sim:
        Owning simulator.
    generator:
        The generator to drive.  It must yield :class:`Event` instances.
    name:
        Optional human-readable name used in error messages and tracing.
    """

    def __init__(self, sim: "Simulator", generator: Generator,
                 name: Optional[str] = None):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError(
                f"Process requires a generator, got {type(generator).__name__}; "
                "did you forget to call the process function?")
        super().__init__(sim)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        #: the event this process is currently waiting on (None if not started
        #: or already terminated)
        self._target: Optional[Event] = None

        # Kick-start the process via an immediately-triggered bootstrap event.
        bootstrap = Event(sim)
        bootstrap._ok = True
        bootstrap._value = None
        bootstrap.callbacks.append(self._resume)
        sim.schedule(bootstrap, priority=sim.PRIORITY_URGENT)

    # ------------------------------------------------------------------
    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`ProcessInterrupted` into the process at its next step.

        The interrupt is delivered asynchronously (as an urgent event) so that
        the caller's own execution is not re-entered.
        """
        if self.triggered:
            raise SimulationError(f"cannot interrupt terminated process {self.name!r}")

        interrupt_event = Event(self.sim)
        interrupt_event._ok = False
        interrupt_event._value = ProcessInterrupted(cause)
        interrupt_event._defused = True
        interrupt_event.callbacks.append(self._resume)
        self.sim.schedule(interrupt_event, priority=self.sim.PRIORITY_URGENT)

    # ------------------------------------------------------------------
    def _resume(self, event: Event) -> None:
        """Drive the generator one step with the outcome of ``event``."""
        if self.triggered:
            # A stale wake-up (e.g. an interrupt racing with termination).
            return

        self._target = None
        try:
            if event._ok:
                yielded = self._generator.send(event._value)
            else:
                # Mark the failure as handled: it is being delivered to a
                # process, which may catch it.
                event._defused = True
                yielded = self._generator.throw(event._value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self.fail(exc)
            return

        if not isinstance(yielded, Event):
            error = SimulationError(
                f"process {self.name!r} yielded {yielded!r}; "
                "processes must yield Event instances")
            try:
                self._generator.throw(error)
            except StopIteration as stop:
                self.succeed(stop.value)
            except BaseException as exc:
                self.fail(exc)
            return

        if yielded.sim is not self.sim:
            self.fail(SimulationError(
                f"process {self.name!r} yielded an event from another simulator"))
            return

        self._target = yielded
        yielded.add_callback(self._resume)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.triggered else "alive"
        return f"<Process {self.name!r} {state}>"
