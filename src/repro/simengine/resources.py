"""Shared resources for simulated processes.

Three resource flavours are provided, mirroring the needs of the cluster and
storage models:

* :class:`Resource` / :class:`PriorityResource` — a server with finite
  capacity (a disk head, a NIC, a lock-manager thread).  Processes ``yield
  resource.request()`` to acquire a slot and must release it when done.
* :class:`Store` — an unbounded (or bounded) FIFO of Python objects, used as
  message queues between simulated services.
* :class:`Container` — a continuous quantity (buffer space, credits).
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Any, Deque, List, Optional, TYPE_CHECKING

from repro.errors import SimulationError
from repro.simengine.events import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simengine.simulator import Simulator


class Request(Event):
    """Acquisition request for a :class:`Resource`.

    The event succeeds when the resource grants a slot to the requester.
    A request also works as a context token: pass it back to
    :meth:`Resource.release`.
    """

    def __init__(self, resource: "Resource", priority: int = 0):
        super().__init__(resource.sim)
        self.resource = resource
        self.priority = priority
        self.usage_since: Optional[float] = None


class Resource:
    """FIFO resource with ``capacity`` concurrent users."""

    def __init__(self, sim: "Simulator", capacity: int = 1):
        if capacity <= 0:
            raise SimulationError(f"capacity must be positive, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.users: List[Request] = []
        self.queue: Deque[Request] = deque()
        self._tiebreak = itertools.count()

    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        """Number of slots currently in use."""
        return len(self.users)

    def request(self, priority: int = 0) -> Request:
        """Ask for a slot; returns an event that fires when granted."""
        req = Request(self, priority)
        self._enqueue(req)
        self._grant()
        return req

    def release(self, request: Request) -> None:
        """Return the slot held by ``request`` to the pool."""
        if request in self.users:
            self.users.remove(request)
        elif request in self.queue:
            # Cancel a still-queued request (e.g. after an interrupt).
            self.queue.remove(request)
        else:
            raise SimulationError("release() of a request that is not held/queued")
        self._grant()

    # ------------------------------------------------------------------
    def _enqueue(self, req: Request) -> None:
        self.queue.append(req)

    def _grant(self) -> None:
        while self.queue and len(self.users) < self.capacity:
            req = self._pop_next()
            self.users.append(req)
            req.usage_since = self.sim.now
            req.succeed(req)

    def _pop_next(self) -> Request:
        return self.queue.popleft()


class PriorityResource(Resource):
    """Resource whose waiting queue is ordered by ``priority`` (lower first).

    Ties are broken by arrival order, so behaviour stays deterministic.
    """

    def _enqueue(self, req: Request) -> None:
        req._order = (req.priority, next(self._tiebreak))  # type: ignore[attr-defined]
        self.queue.append(req)

    def _pop_next(self) -> Request:
        best_index = 0
        best_key = self.queue[0]._order  # type: ignore[attr-defined]
        for index, req in enumerate(self.queue):
            key = req._order  # type: ignore[attr-defined]
            if key < best_key:
                best_key = key
                best_index = index
        req = self.queue[best_index]
        del self.queue[best_index]
        return req


class StorePut(Event):
    """Event representing a pending ``put`` into a :class:`Store`."""

    def __init__(self, store: "Store", item: Any):
        super().__init__(store.sim)
        self.item = item


class StoreGet(Event):
    """Event representing a pending ``get`` from a :class:`Store`."""

    def __init__(self, store: "Store"):
        super().__init__(store.sim)


class Store:
    """FIFO queue of arbitrary Python objects with optional bounded capacity."""

    def __init__(self, sim: "Simulator", capacity: float = float("inf")):
        if capacity <= 0:
            raise SimulationError("Store capacity must be positive")
        self.sim = sim
        self.capacity = capacity
        self.items: Deque[Any] = deque()
        self._putters: Deque[StorePut] = deque()
        self._getters: Deque[StoreGet] = deque()

    def put(self, item: Any) -> StorePut:
        """Queue ``item``; the returned event fires once the item is stored."""
        event = StorePut(self, item)
        self._putters.append(event)
        self._dispatch()
        return event

    def get(self) -> StoreGet:
        """Request one item; the returned event fires with the item."""
        event = StoreGet(self)
        self._getters.append(event)
        self._dispatch()
        return event

    def __len__(self) -> int:
        return len(self.items)

    def _dispatch(self) -> None:
        progress = True
        while progress:
            progress = False
            # Move queued puts into the buffer while there is room.
            while self._putters and len(self.items) < self.capacity:
                put = self._putters.popleft()
                self.items.append(put.item)
                put.succeed()
                progress = True
            # Serve waiting getters from the buffer.
            while self._getters and self.items:
                get = self._getters.popleft()
                get.succeed(self.items.popleft())
                progress = True


class Container:
    """A continuous quantity (credits / buffer bytes) with blocking get/put."""

    def __init__(self, sim: "Simulator", capacity: float = float("inf"),
                 init: float = 0.0):
        if capacity <= 0:
            raise SimulationError("Container capacity must be positive")
        if init < 0 or init > capacity:
            raise SimulationError("init must be within [0, capacity]")
        self.sim = sim
        self.capacity = capacity
        self.level = init
        self._putters: Deque[tuple] = deque()
        self._getters: Deque[tuple] = deque()

    def put(self, amount: float) -> Event:
        """Add ``amount``; blocks (pending event) while it would overflow."""
        if amount <= 0:
            raise SimulationError("put amount must be positive")
        event = Event(self.sim)
        self._putters.append((event, amount))
        self._dispatch()
        return event

    def get(self, amount: float) -> Event:
        """Remove ``amount``; blocks while the level is insufficient."""
        if amount <= 0:
            raise SimulationError("get amount must be positive")
        event = Event(self.sim)
        self._getters.append((event, amount))
        self._dispatch()
        return event

    def _dispatch(self) -> None:
        progress = True
        while progress:
            progress = False
            if self._putters:
                event, amount = self._putters[0]
                if self.level + amount <= self.capacity:
                    self._putters.popleft()
                    self.level += amount
                    event.succeed()
                    progress = True
            if self._getters:
                event, amount = self._getters[0]
                if self.level >= amount:
                    self._getters.popleft()
                    self.level -= amount
                    event.succeed(amount)
                    progress = True
