"""Deterministic discrete-event simulation engine.

The engine is a small, self-contained core in the style of SimPy: simulated
*processes* are Python generators that ``yield`` :class:`~repro.simengine.events.Event`
objects to suspend themselves until the event fires.  Simulated time only
advances when the event queue is stepped, so runs are fully deterministic for
a fixed seed and fixed process creation order.

The rest of the repro package uses this engine to model the cluster on which
the storage services and the MPI ranks execute, charging time for network
transfers, disk I/O and lock waiting.

Public surface
--------------

=====================  ======================================================
:class:`Simulator`      the event loop and simulated clock
:class:`Event`          one-shot event; ``succeed`` / ``fail`` to trigger
:class:`Timeout`        event that fires after a fixed simulated delay
:class:`Process`        a running generator; itself an event (fires on return)
:class:`AllOf`          condition event: fires when all children fired
:class:`AnyOf`          condition event: fires when any child fired
:class:`Resource`       FIFO resource with finite capacity (e.g. a disk)
:class:`PriorityResource`  resource whose queue is ordered by priority
:class:`Store`          FIFO queue of Python objects (e.g. a message queue)
:class:`Container`      counter of continuous capacity (e.g. buffer space)
:class:`DeterministicRNG`  seeded random streams derived from a root seed
=====================  ======================================================
"""

from repro.simengine.events import Event, Timeout, Timer, AllOf, AnyOf, Condition
from repro.simengine.simulator import Simulator
from repro.simengine.process import Fanout, Process
from repro.simengine.resources import (
    Resource,
    PriorityResource,
    Store,
    Container,
    Request,
)
from repro.simengine.rand import DeterministicRNG

__all__ = [
    "Simulator",
    "Event",
    "Fanout",
    "Timeout",
    "Timer",
    "AllOf",
    "AnyOf",
    "Condition",
    "Process",
    "Resource",
    "PriorityResource",
    "Store",
    "Container",
    "Request",
    "DeterministicRNG",
]
