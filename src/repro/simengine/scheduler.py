"""Pluggable event-queue backends for the simulator.

Both backends share one contract: entries are ``(time, priority, seq, event)``
tuples and must drain in exactly ``(time, priority, seq)`` order, so swapping
backends never changes simulation results (this is pinned by a property test
in ``tests/simengine/test_scheduler_equivalence.py``).

* :class:`HeapQueue` — the seed implementation: a single binary heap.  Every
  push/pop is ``O(log n)`` in the total number of pending events.
* :class:`CalendarQueue` — a calendar/slot scheduler.  The dominant event
  class in this simulator is "fires at the current instant" (every
  ``Event.succeed`` schedules at *now*), which lands in a small per-instant
  heap whose size tracks the handful of events at one timestamp rather than
  the thousands pending across all future times.  Near-future events go into
  a ring of time slots; far-future events into an overflow heap.  Cancelled
  timers are discarded lazily when their entry is encountered, so
  ``Timer.cancel`` is O(1).
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush

_INF = float("inf")


class HeapQueue:
    """Single binary-heap backend (the seed scheduler)."""

    __slots__ = ("_heap", "_live")

    def __init__(self) -> None:
        self._heap = []
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def push(self, time, priority, seq, event) -> None:
        heappush(self._heap, (time, priority, seq, event))
        self._live += 1

    def pop(self):
        heap = self._heap
        while heap:
            entry = heappop(heap)
            if entry[3]._cancelled:
                continue
            self._live -= 1
            return entry
        raise IndexError("pop from an empty event queue")

    def peek(self) -> float:
        heap = self._heap
        while heap and heap[0][3]._cancelled:
            heappop(heap)
        return heap[0][0] if heap else _INF

    def note_cancel(self) -> None:
        self._live -= 1


class CalendarQueue:
    """Calendar/slot scheduler with a same-instant fast path.

    Parameters
    ----------
    width:
        Time span covered by one slot.  The default matches the microsecond
        scale of the cluster's network/RPC delays.
    nslots:
        Number of slots in the ring; ``width * nslots`` is the horizon beyond
        which events fall into the overflow heap.
    """

    __slots__ = ("_time", "_now_heap", "_slots", "_nslots", "_width",
                 "_cursor", "_slot_count", "_overflow", "_live", "_peek_cache")

    def __init__(self, width: float = 64e-6, nslots: int = 8192) -> None:
        self._time = 0.0
        #: (priority, seq, event) entries at the current instant ``_time``
        self._now_heap = []
        self._width = width
        self._nslots = nslots
        self._slots = [[] for _ in range(nslots)]
        #: absolute slot index containing ``_time``
        self._cursor = 0
        #: physical (incl. cancelled) entries in the slot ring
        self._slot_count = 0
        #: far-future entries beyond the ring horizon
        self._overflow = []
        self._live = 0
        #: cached earliest future instant, or None if unknown
        self._peek_cache = None

    def __len__(self) -> int:
        return self._live

    def push(self, time, priority, seq, event) -> None:
        self._live += 1
        if time <= self._time:
            # The dominant case: an event triggered "now".
            heappush(self._now_heap, (priority, seq, event))
            return
        index = int(time / self._width)
        if index < self._cursor + self._nslots:
            self._slots[index % self._nslots].append((time, priority, seq, event))
            self._slot_count += 1
        else:
            heappush(self._overflow, (time, priority, seq, event))
        cache = self._peek_cache
        if cache is not None and time < cache:
            self._peek_cache = time

    def pop(self):
        while True:
            heap = self._now_heap
            while heap:
                priority, seq, event = heappop(heap)
                if event._cancelled:
                    continue
                self._live -= 1
                return self._time, priority, seq, event
            self._advance()

    def peek(self) -> float:
        heap = self._now_heap
        while heap and heap[0][2]._cancelled:
            heappop(heap)
        if heap:
            return self._time
        if self._peek_cache is None:
            self._peek_cache = self._scan()[0]
        return self._peek_cache

    def note_cancel(self) -> None:
        self._live -= 1
        # The cancelled entry may have been the cached next instant.
        self._peek_cache = None

    # ------------------------------------------------------------------
    def _scan(self):
        """Earliest live future instant and the slot holding it (or -1).

        Pops cancelled overflow tops and clears all-cancelled buckets as a
        side effect, so lazy-cancelled garbage cannot accumulate.
        """
        overflow = self._overflow
        while overflow and overflow[0][3]._cancelled:
            heappop(overflow)
        tmin = overflow[0][0] if overflow else _INF
        slot = -1
        if self._slot_count:
            slots = self._slots
            nslots = self._nslots
            index = self._cursor
            limit = index + nslots
            while index < limit:
                bucket = slots[index % nslots]
                if bucket:
                    bucket_min = _INF
                    for entry in bucket:
                        if entry[0] < bucket_min and not entry[3]._cancelled:
                            bucket_min = entry[0]
                    if bucket_min < _INF:
                        # First slot with a live entry bounds the slot-side
                        # minimum: later slots only hold later times.
                        if bucket_min < tmin:
                            tmin = bucket_min
                            slot = index
                        break
                    # Every entry here was cancelled; drop the garbage.
                    self._slot_count -= len(bucket)
                    slots[index % nslots] = []
                index += 1
        return tmin, slot

    def _advance(self) -> None:
        """Load all entries at the earliest future instant into the now-heap."""
        while True:
            tmin, slot = self._scan()
            if tmin == _INF:
                raise IndexError("pop from an empty event queue")
            batch = self._now_heap
            if slot >= 0:
                position = slot % self._nslots
                bucket = self._slots[position]
                keep = []
                for entry in bucket:
                    if entry[3]._cancelled:
                        continue
                    if entry[0] == tmin:
                        batch.append((entry[1], entry[2], entry[3]))
                    else:
                        keep.append(entry)
                self._slot_count -= len(bucket) - len(keep)
                self._slots[position] = keep
            overflow = self._overflow
            while overflow and overflow[0][0] == tmin:
                entry = heappop(overflow)
                if not entry[3]._cancelled:
                    batch.append((entry[1], entry[2], entry[3]))
            self._time = tmin
            self._cursor = int(tmin / self._width)
            self._peek_cache = None
            if batch:
                heapify(batch)
                return
