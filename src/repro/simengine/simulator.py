"""The discrete-event simulator: event queue and simulated clock."""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from repro.errors import SimulationError
from repro.simengine.events import AllOf, AnyOf, Event, Timeout, Timer, _Sleep
from repro.simengine.process import Fanout, Process
from repro.simengine.rand import DeterministicRNG
from repro.simengine.scheduler import CalendarQueue, HeapQueue

#: recycled :class:`_Sleep` instances kept per simulator
_SLEEP_POOL_CAP = 128


class Simulator:
    """Event loop, priority queue and clock of the simulation.

    The simulator owns a queue of ``(time, priority, sequence, event)``
    entries.  ``sequence`` is a monotonically increasing tie-breaker that
    makes the execution order of same-time events deterministic (insertion
    order), which in turn makes every benchmark run reproducible.

    Parameters
    ----------
    seed:
        Root seed for :class:`~repro.simengine.rand.DeterministicRNG`.  Every
        component that needs randomness derives a named stream from it.
    scheduler:
        Queue backend: ``"calendar"`` (default) uses the calendar/slot
        scheduler with an O(1)-amortized fast path for events firing at the
        current instant; ``"heapq"`` uses the seed binary-heap scheduler.
        Both drain in exactly the same ``(time, priority, sequence)`` order,
        so results are identical — only wall-clock speed differs.
    """

    #: priority used by normal events
    PRIORITY_NORMAL = 1
    #: priority used by urgent (engine-internal) events
    PRIORITY_URGENT = 0

    def __init__(self, seed: int = 0, scheduler: str = "calendar"):
        self._now: float = 0.0
        if scheduler == "calendar":
            self._queue = CalendarQueue()
        elif scheduler == "heapq":
            self._queue = HeapQueue()
        else:
            raise SimulationError(
                f"unknown scheduler {scheduler!r}; use 'calendar' or 'heapq'")
        #: name of the active queue backend
        self.scheduler = scheduler
        self._seq: int = 0
        self._sleep_pool: list = []
        self.rng = DeterministicRNG(seed)
        #: number of events processed so far (useful for debugging/metrics)
        self.processed_events: int = 0

    # ------------------------------------------------------------------
    # clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    # ------------------------------------------------------------------
    # event factories
    # ------------------------------------------------------------------
    def event(self) -> Event:
        """Create a new pending :class:`Event` bound to this simulator."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event firing ``delay`` simulated time units from now."""
        return Timeout(self, delay, value)

    def sleep(self, delay: float, value: Any = None) -> Event:
        """A pooled timeout for hot paths.

        Semantically identical to :meth:`timeout`, but processed instances
        are recycled.  The returned event must be yielded immediately by
        exactly one process — never stored, shared, or put in a condition.
        """
        if delay < 0:
            raise SimulationError(f"negative sleep delay: {delay!r}")
        pool = self._sleep_pool
        if pool:
            ev = pool.pop()
            ev.callbacks = []
            ev._value = value
        else:
            ev = _Sleep(self, value)
        seq = self._seq
        self._seq = seq + 1
        self._queue.push(self._now + delay, self.PRIORITY_NORMAL, seq, ev)
        return ev

    def call_later(self, delay: float, fn: Callable[..., Any], *args: Any) -> Timer:
        """Run ``fn(*args)`` after ``delay`` time units; returns a cancellable
        :class:`Timer`.  ``timer.cancel()`` is O(1) (lazy removal), which
        makes frequently re-armed watchdogs cheap."""
        timer = Timer(self, fn, args)
        self.schedule(timer, delay=delay)
        return timer

    def process(self, generator: Generator, name: Optional[str] = None) -> Process:
        """Start running ``generator`` as a simulated process."""
        return Process(self, generator, name=name)

    def all_of(self, events) -> AllOf:
        """Event that fires when all ``events`` have fired successfully."""
        return AllOf(self, events)

    def fanout(self, generators) -> Fanout:
        """Run ``generators`` concurrently; the returned event fires with the
        list of their return values when the slowest finishes.  Equivalent to
        ``all_of`` over one process per generator, but the whole fan-out is
        one scheduler transaction (a single bootstrap event) — the cheap way
        to hit K shards in parallel."""
        return Fanout(self, generators)

    def any_of(self, events) -> AnyOf:
        """Event that fires when any of ``events`` has fired successfully."""
        return AnyOf(self, events)

    # ------------------------------------------------------------------
    # scheduling and stepping
    # ------------------------------------------------------------------
    def schedule(self, event: Event, delay: float = 0.0,
                 priority: int = PRIORITY_NORMAL) -> None:
        """Put a triggered event on the queue ``delay`` units in the future."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        seq = self._seq
        self._seq = seq + 1
        self._queue.push(self._now + delay, priority, seq, event)

    def cancel(self, timer: Timer) -> bool:
        """Cancel a :class:`Timer` created by :meth:`call_later`."""
        if not isinstance(timer, Timer):
            raise SimulationError("only Timer events (call_later) can be cancelled")
        return timer.cancel()

    def peek(self) -> float:
        """Time of the next scheduled event, or ``float('inf')`` if none."""
        return self._queue.peek()

    def step(self) -> None:
        """Process exactly one event (advancing the clock to its time)."""
        queue = self._queue
        if not queue:
            raise SimulationError("step() on an empty event queue")
        when, _priority, _seq, event = queue.pop()
        self._now = when
        self.processed_events += 1

        callbacks, event.callbacks = event.callbacks, None
        if callbacks is None:  # pragma: no cover - defensive; cannot happen
            raise SimulationError(f"{event!r} processed twice")
        for callback in callbacks:
            callback(event)

        if event._ok:
            if event.__class__ is _Sleep and len(self._sleep_pool) < _SLEEP_POOL_CAP:
                self._sleep_pool.append(event)
        elif not event._defused:
            # An unhandled failure (nobody waited on the event): surface it so
            # bugs in simulated services do not silently disappear.
            raise event._value

    def run(self, until: Optional[float] = None,
            stop_event: Optional[Event] = None) -> Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            Stop once simulated time would exceed this value.  ``None`` means
            run until the event queue drains.
        stop_event:
            Stop as soon as this event has been processed and return its
            value.  Typically the :class:`Process` of a "main" driver.

        Returns
        -------
        The value of ``stop_event`` if given and triggered, else ``None``.
        """
        if stop_event is not None and stop_event.sim is not self:
            raise SimulationError("stop_event belongs to a different simulator")

        while self._queue:
            if stop_event is not None and stop_event.processed:
                break
            if until is not None and self.peek() > until:
                self._now = until
                break
            self.step()

        if stop_event is not None:
            if not stop_event.triggered:
                if until is None:
                    raise SimulationError(
                        "run() finished but stop_event never triggered "
                        "(deadlocked processes?)")
                return None
            if not stop_event._ok:
                raise stop_event._value
            return stop_event._value
        return None

    def run_all(self, max_events: int = 50_000_000) -> None:
        """Drain the queue completely (with a safety cap on event count)."""
        count = 0
        while self._queue:
            self.step()
            count += 1
            if count > max_events:
                raise SimulationError(
                    f"run_all() exceeded {max_events} events; "
                    "likely a livelocked process")

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------
    def defer(self, fn: Callable[[], Any], delay: float = 0.0) -> Event:
        """Schedule plain callable ``fn`` to run ``delay`` time units from now.

        Returns an event that succeeds with ``fn()``'s return value.
        """
        done = self.event()

        def runner():
            yield self.timeout(delay)
            return fn()

        proc = self.process(runner(), name=f"defer:{getattr(fn, '__name__', 'fn')}")
        proc.add_callback(done.trigger)
        return done
