"""The discrete-event simulator: event queue and simulated clock."""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, List, Optional, Tuple

from repro.errors import SimulationError
from repro.simengine.events import AllOf, AnyOf, Event, Timeout
from repro.simengine.process import Process
from repro.simengine.rand import DeterministicRNG


class Simulator:
    """Event loop, priority queue and clock of the simulation.

    The simulator owns a heap of ``(time, priority, sequence, event)`` tuples.
    ``sequence`` is a monotonically increasing tie-breaker that makes the
    execution order of same-time events deterministic (insertion order), which
    in turn makes every benchmark run reproducible.

    Parameters
    ----------
    seed:
        Root seed for :class:`~repro.simengine.rand.DeterministicRNG`.  Every
        component that needs randomness derives a named stream from it.
    """

    #: priority used by normal events
    PRIORITY_NORMAL = 1
    #: priority used by urgent (engine-internal) events
    PRIORITY_URGENT = 0

    def __init__(self, seed: int = 0):
        self._now: float = 0.0
        self._queue: List[Tuple[float, int, int, Event]] = []
        self._seq: int = 0
        self.rng = DeterministicRNG(seed)
        #: number of events processed so far (useful for debugging/metrics)
        self.processed_events: int = 0

    # ------------------------------------------------------------------
    # clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    # ------------------------------------------------------------------
    # event factories
    # ------------------------------------------------------------------
    def event(self) -> Event:
        """Create a new pending :class:`Event` bound to this simulator."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event firing ``delay`` simulated time units from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: Optional[str] = None) -> Process:
        """Start running ``generator`` as a simulated process."""
        return Process(self, generator, name=name)

    def all_of(self, events) -> AllOf:
        """Event that fires when all ``events`` have fired successfully."""
        return AllOf(self, events)

    def any_of(self, events) -> AnyOf:
        """Event that fires when any of ``events`` has fired successfully."""
        return AnyOf(self, events)

    # ------------------------------------------------------------------
    # scheduling and stepping
    # ------------------------------------------------------------------
    def schedule(self, event: Event, delay: float = 0.0,
                 priority: int = PRIORITY_NORMAL) -> None:
        """Put a triggered event on the queue ``delay`` units in the future."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        heapq.heappush(self._queue, (self._now + delay, priority, self._seq, event))
        self._seq += 1

    def peek(self) -> float:
        """Time of the next scheduled event, or ``float('inf')`` if none."""
        if not self._queue:
            return float("inf")
        return self._queue[0][0]

    def step(self) -> None:
        """Process exactly one event (advancing the clock to its time)."""
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        when, _priority, _seq, event = heapq.heappop(self._queue)
        self._now = when
        self.processed_events += 1

        callbacks, event.callbacks = event.callbacks, None
        if callbacks is None:  # pragma: no cover - defensive; cannot happen
            raise SimulationError(f"{event!r} processed twice")
        for callback in callbacks:
            callback(event)

        if not event._ok and not getattr(event, "_defused", False):
            # An unhandled failure (nobody waited on the event): surface it so
            # bugs in simulated services do not silently disappear.
            exc = event._value
            raise exc

    def run(self, until: Optional[float] = None,
            stop_event: Optional[Event] = None) -> Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            Stop once simulated time would exceed this value.  ``None`` means
            run until the event queue drains.
        stop_event:
            Stop as soon as this event has been processed and return its
            value.  Typically the :class:`Process` of a "main" driver.

        Returns
        -------
        The value of ``stop_event`` if given and triggered, else ``None``.
        """
        if stop_event is not None and stop_event.sim is not self:
            raise SimulationError("stop_event belongs to a different simulator")

        while self._queue:
            if stop_event is not None and stop_event.processed:
                break
            if until is not None and self.peek() > until:
                self._now = until
                break
            self.step()

        if stop_event is not None:
            if not stop_event.triggered:
                if until is None:
                    raise SimulationError(
                        "run() finished but stop_event never triggered "
                        "(deadlocked processes?)")
                return None
            if not stop_event._ok:
                raise stop_event._value
            return stop_event._value
        return None

    def run_all(self, max_events: int = 50_000_000) -> None:
        """Drain the queue completely (with a safety cap on event count)."""
        count = 0
        while self._queue:
            self.step()
            count += 1
            if count > max_events:
                raise SimulationError(
                    f"run_all() exceeded {max_events} events; "
                    "likely a livelocked process")

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------
    def defer(self, fn: Callable[[], Any], delay: float = 0.0) -> Event:
        """Schedule plain callable ``fn`` to run ``delay`` time units from now.

        Returns an event that succeeds with ``fn()``'s return value.
        """
        done = self.event()

        def runner():
            yield self.timeout(delay)
            return fn()

        proc = self.process(runner(), name=f"defer:{getattr(fn, '__name__', 'fn')}")
        proc.add_callback(done.trigger)
        return done
