"""repro — reproduction of Tran (IPDPSW 2011).

"Towards a Storage Backend Optimized for Atomic MPI-I/O for Parallel
Scientific Applications".

The package provides:

* :mod:`repro.simengine` — a deterministic discrete-event simulation engine
  (generator-based processes, resources, simulated time);
* :mod:`repro.cluster` — a simulated cluster: nodes, disks, network links and
  an RPC transport with a message cost model;
* :mod:`repro.core` — byte-region algebra and the MPI-atomicity checker;
* :mod:`repro.blobseer` — a from-scratch re-implementation of the BlobSeer
  versioning data-sharing service (chunk providers, provider manager,
  versioned segment-tree metadata with shadowing, version manager);
* :mod:`repro.vstore` — the paper's contribution: a versioning storage
  backend with native non-contiguous, MPI-atomic vectored writes and reads;
* :mod:`repro.posixfs` — the Lustre-like baseline: a striped object-store
  file system with a distributed byte-range lock manager and POSIX atomicity;
* :mod:`repro.mpi` — simulated MPI ranks, communicators and derived
  datatypes;
* :mod:`repro.mpiio` — an MPI-I/O ``File`` layer (set_view / write_at_all /
  atomic mode) with pluggable ADIO drivers for both backends;
* :mod:`repro.workloads` — the paper's workloads (overlapped non-contiguous
  stress test, MPI-tile-IO, ghost-cell domain decomposition);
* :mod:`repro.bench` — the experiment harness regenerating every figure and
  table of the evaluation.

Quickstart
----------

>>> from repro import VersioningBackend
>>> backend = VersioningBackend(num_providers=4, chunk_size=64)
>>> blob = backend.create_blob(size=1024)
>>> snap = backend.vwrite(blob, [(0, b"abcd"), (512, b"wxyz")])
>>> backend.vread(blob, [(0, 4), (512, 4)], version=snap.version)
[b'abcd', b'wxyz']
"""

from repro._version import __version__

__all__ = [
    "__version__",
    "VersioningBackend",
    "PosixParallelFS",
    "Region",
    "RegionList",
]

_LAZY_EXPORTS = {
    "VersioningBackend": ("repro.vstore.backend", "VersioningBackend"),
    "PosixParallelFS": ("repro.posixfs.filesystem", "PosixParallelFS"),
    "Region": ("repro.core.regions", "Region"),
    "RegionList": ("repro.core.regions", "RegionList"),
}


def __getattr__(name: str):
    """Lazily resolve the public facade classes.

    Keeping these imports lazy lets light-weight consumers (and the test
    suites of the low-level substrates) import ``repro`` without paying for
    the whole storage stack.
    """
    if name in _LAZY_EXPORTS:
        import importlib

        module_name, attribute = _LAZY_EXPORTS[name]
        module = importlib.import_module(module_name)
        value = getattr(module, attribute)
        globals()[name] = value
        return value
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
