"""Cluster-wide configuration knobs.

All values use SI units: bytes, bytes per second, seconds.  The defaults are
loosely calibrated on the Grid'5000 clusters used by the paper (Gigabit
Ethernet, commodity SATA disks); they define the absolute scale of the
simulated throughput axis but not the relative behaviour of the compared
approaches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


MiB = 1024 * 1024
GiB = 1024 * MiB


@dataclass
class ClusterConfig:
    """Hardware parameters of the simulated cluster."""

    #: simulation engine profile: ``"fast"`` (analytic FIFO reservations, a
    #: couple of pooled scheduler events per transfer/IO) or ``"legacy"``
    #: (the seed's event-per-hop resource machinery — kept so perf baselines
    #: can be taken against true seed behaviour).  Timings are identical.
    engine: str = "fast"
    #: simulator queue backend: ``"calendar"`` or ``"heapq"``; ``None`` picks
    #: calendar for the fast engine and heapq for the legacy engine
    scheduler: Optional[str] = None
    #: network cost model: ``"bottleneck"`` (seed full-bisection switch with
    #: half-duplex NICs) or ``"queued"`` (per-link FIFO queues over a two-tier
    #: leaf-switch topology with a CoDel standing-queue signal)
    network_model: str = "bottleneck"
    #: queued model: nodes per leaf switch (grouped in creation order)
    nodes_per_switch: int = 16
    #: queued model: one-way latency between switches; ``None`` = 2.5x the
    #: intra-switch ``network_latency``
    cross_switch_latency: Optional[float] = None
    #: queued model: bandwidth of each switch uplink/downlink; ``None`` = 4x
    #: the NIC ``network_bandwidth``
    switch_bandwidth: Optional[float] = None
    #: queued model: CoDel target standing-queue delay (seconds)
    codel_target: float = 1e-3
    #: queued model: CoDel observation interval (seconds)
    codel_interval: float = 20e-3
    #: queued model: fractional uniform jitter applied to propagation
    #: latency (0 disables).  Drawn from the ``network`` RNG scope, so it
    #: never perturbs workload bytes
    network_jitter: float = 0.0
    #: one-way network latency per message (seconds)
    network_latency: float = 100e-6
    #: NIC bandwidth per node (bytes/second); GbE ~ 117 MiB/s
    network_bandwidth: float = 117 * MiB
    #: disk sequential bandwidth (bytes/second)
    disk_bandwidth: float = 70 * MiB
    #: fixed per-I/O disk overhead (seconds) — seek + controller
    disk_overhead: float = 1e-3
    #: CPU cost charged per RPC handled by a service (seconds)
    rpc_handling_overhead: float = 20e-6
    #: size in bytes assumed for small control messages (tickets, acks, ...)
    control_message_size: int = 256
    #: size in bytes of one serialized metadata tree node
    metadata_node_size: int = 512
    #: size in bytes of one (offset, size, version hint) entry in a batched
    #: metadata lookup request
    metadata_request_size: int = 32
    #: whether storage services persist chunk/object payloads to their disk
    #: (True charges disk time on the data path; False models memory-backed
    #: providers, as BlobSeer deployments on Grid'5000 often used)
    persist_to_disk: bool = True
    #: default LRU capacity (entries) of the client-side metadata node
    #: caches; ``None`` keeps them unbounded.  Individual clients can
    #: override this per instance (``metadata_cache_capacity=``)
    metadata_cache_capacity: Optional[int] = None
    #: default aggregator count for two-phase collective buffering (ROMIO's
    #: ``cb_nodes``).  ``None`` picks one aggregator per four ranks; drivers
    #: can override per instance (``collective_aggregators=``).  The count is
    #: always clamped to the communicator size
    collective_aggregators: Optional[int] = None
    #: default rank->node placement density of MPI jobs: how many rank
    #: processes share one compute node.  1 reproduces the paper's
    #: one-process-per-node Grid'5000 placement; larger values model
    #: multi-core nodes, where co-located ranks share a NIC *and* the
    #: node-local metadata cache.  Jobs can override per launch
    #: (``ranks_per_node=`` / an explicit ``placement`` map)
    ranks_per_node: int = 1
    #: whether clients attach to their compute node's shared metadata cache
    #: tier (:class:`~repro.blobseer.metadata.sharedcache.NodeCacheService`).
    #: Off by default so single-rank-per-node baselines stay unchanged;
    #: individual clients can override (``shared_metadata_cache=``)
    shared_metadata_cache: bool = False
    #: entry bound of each node's shared cache (``None`` = unbounded)
    shared_cache_capacity: Optional[int] = None
    #: eviction policy of the shared tier: ``"lru"``, ``"slru"``/``"2q"``,
    #: or ``"level"``/``"level:K"`` (pin the top K tree levels)
    shared_cache_policy: str = "lru"
    #: whether metadata fetches speculatively prefetch the children of
    #: resolved inner nodes (and leaf base versions) the answering shard
    #: owns — fewer round-trip levels for slightly more node traffic.
    #: Individual clients can override (``metadata_prefetch=``)
    metadata_prefetch: bool = False
    #: whether compute nodes cooperate across the node boundary: on a
    #: shared-tier miss the client probes the responsible peer node's
    #: cache (:mod:`repro.blobseer.metadata.coopcache`) over a real
    #: simulated RPC before falling back to the authoritative shards.
    #: Requires ``shared_metadata_cache``; off by default so every
    #: existing configuration is byte- and counter-identical
    cooperative_cache: bool = False
    #: fraction of (node, blob) pairs whose stable role hash elects the
    #: node a **provider** (read-through custodian converging on a full
    #: replica of its key slice); the rest are **samplers** (serve only
    #: what their custody-aligned slice already holds)
    coop_provider_fraction: float = 0.5
    #: whether simultaneous missers for the same metadata node park on one
    #: sim event and share a single upstream fetch (``coalesced_fetches``
    #: stat).  ``None`` follows ``cooperative_cache``, which keeps the
    #: cooperative-off timeline untouched; set True/False to force
    fetch_coalescing: Optional[bool] = None
    #: record causal spans (file op → collective phase → coalescer batch →
    #: commit stage → RPC → link) plus per-link telemetry on the queued
    #: network model, exportable as Chrome trace-event JSON
    #: (:mod:`repro.obs`).  Timestamps come from the simulation clock only,
    #: so tracing never changes simulated behaviour and traces are
    #: byte-stable across runs; disabled (the default) costs one attribute
    #: test per instrumented site
    tracing: bool = False
    #: collect deterministic fixed-log-bucket latency histograms
    #: (p50/p95/p99/max) for RPC round-trips, link queue delays and
    #: File-layer operations into the metrics registry
    #: (:mod:`repro.obs.digest`).  Independent of ``tracing`` so digest
    #: columns can ride in headline (untraced) bench rows; disabled (the
    #: default) costs one attribute test per instrumented site
    latency_digests: bool = False
    #: keep an always-on bounded ring buffer of recent RPC/operation
    #: events (:mod:`repro.obs.flight`) for post-hoc triage without full
    #: tracing.  On by default: the recorder only appends to a deque and
    #: never touches the simulation clock, events or registry, so it is
    #: behaviour-neutral (pinned by test)
    flight_recorder: bool = True
    #: flight recorder ring capacity, in entries
    flight_capacity: int = 4096

    def copy(self, **overrides) -> "ClusterConfig":
        """A copy of the config with selected fields replaced."""
        data = self.__dict__.copy()
        data.update(overrides)
        return ClusterConfig(**data)

    def as_dict(self) -> dict:
        """All knobs as one flat JSON-serializable dict, in field order.

        The scenario fuzzer dumps this next to every flagged run so a
        failure's exact cluster shape travels with its seed.
        """
        return {name: getattr(self, name)
                for name in self.__dataclass_fields__}
