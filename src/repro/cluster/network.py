"""Network models: per-node NICs with latency + bandwidth costs.

Two switchable models (``ClusterConfig.network_model``):

* :class:`Network` (``"bottleneck"``) — the seed model: a full-bisection
  switch (as in a Grid'5000 cluster).  A transfer from ``src`` to ``dst``
  occupies the half-duplex sender NIC and then the receiver NIC for
  ``nbytes / bandwidth`` each, plus a one-way propagation latency.
  Serializing transfers on each NIC is what produces incast congestion at
  heavily used servers — the phenomenon that makes a single storage target a
  bottleneck and data striping worthwhile (design principle 2 of the paper).

* :class:`QueuedNetwork` (``"queued"``) — per-link FIFO queues carrying
  transmission + propagation delay over an explicit two-tier topology: nodes
  are grouped ``nodes_per_switch`` per leaf switch (in creation order, which
  matches the dense block placement of :func:`~repro.cluster.cluster.placement_map`);
  same-switch transfers pay NIC egress + propagation + NIC ingress, and
  cross-switch transfers additionally queue on the shared switch uplinks.
  NICs are full duplex here.  Every link runs a CoDel-style standing-queue
  detector: when the queueing delay a reservation experiences stays above
  ``codel_target`` for longer than ``codel_interval``, the link records a
  *mark* (no packets are dropped — the signal feeds the stats/reports, the
  way ECN marks would feed a transport).

Both models account FIFO queueing *analytically*: a link keeps a ``free_at``
scalar and each transfer reserves ``[max(now, free_at), ...+tx]`` in arrival
order, which yields exactly the same completion times as the seed's
event-per-hop :class:`~repro.simengine.Resource` machinery with a small
constant number of pooled scheduler events per transfer.  The original
machinery is kept under ``engine="legacy"`` so perf baselines can be taken
against the true seed behaviour.
"""

from __future__ import annotations

from typing import Dict, Optional, TYPE_CHECKING

from repro.simengine import Resource

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.config import ClusterConfig
    from repro.cluster.node import Node
    from repro.simengine import Simulator


class NIC:
    """A node's network interface: a FIFO queue with fixed bandwidth."""

    __slots__ = ("sim", "bandwidth", "name", "free_at",
                 "bytes_transferred", "busy_time", "_port")

    def __init__(self, sim: "Simulator", bandwidth: float, name: str):
        self.sim = sim
        self.bandwidth = float(bandwidth)
        self.name = name
        #: when the last reserved transmission finishes (analytic FIFO queue)
        self.free_at: float = 0.0
        self.bytes_transferred: int = 0
        self.busy_time: float = 0.0
        self._port: Optional[Resource] = None

    def reserve(self, nbytes: int) -> float:
        """Reserve the next FIFO transmission slot; returns its finish time.

        Reservations made in arrival order produce the same schedule as an
        event-per-hop FIFO resource, without the grant/release events.
        """
        tx = nbytes / self.bandwidth
        now = self.sim.now
        start = self.free_at if self.free_at > now else now
        done = start + tx
        self.free_at = done
        self.busy_time += tx
        self.bytes_transferred += nbytes
        return done

    def occupy(self, nbytes: int):
        """Legacy generator occupying the NIC for the serialization time."""
        if self._port is None:
            self._port = Resource(self.sim, capacity=1)
        request = self._port.request()
        yield request
        start = self.sim.now
        try:
            yield self.sim.timeout(nbytes / self.bandwidth)
        finally:
            self.busy_time += self.sim.now - start
            self._port.release(request)
        self.bytes_transferred += nbytes


class Network:
    """Switch-based cluster network connecting every node to every other."""

    model = "bottleneck"

    def __init__(self, sim: "Simulator", latency: float, bandwidth: float,
                 engine: str = "fast", obs=None):
        if latency < 0:
            raise ValueError("latency must be non-negative")
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        self.sim = sim
        self.latency = float(latency)
        self.bandwidth = float(bandwidth)
        self.engine = engine
        self._nics: Dict[str, NIC] = {}
        #: span recorder when the cluster traces (None when disabled, the
        #: zero-cost guard every transfer checks once)
        self.tracer = (obs.tracer if obs is not None and obs.tracer.enabled
                       else None)
        #: latency-digest taps (None when disabled)
        self.digests = obs.digests if obs is not None else None
        self._observed = self.tracer is not None or self.digests is not None
        #: total bytes moved across the network
        self.bytes_transferred: int = 0
        #: total messages moved across the network
        self.messages: int = 0

    def nic(self, node_name: str) -> NIC:
        """The (lazily created) NIC of ``node_name``."""
        nic = self._nics.get(node_name)
        if nic is None:
            nic = self._nics[node_name] = NIC(self.sim, self.bandwidth,
                                              name=f"nic:{node_name}")
        return nic

    def transfer_time(self, nbytes: int) -> float:
        """Unloaded end-to-end time for a message of ``nbytes``."""
        return self.latency + 2 * (nbytes / self.bandwidth)

    def transfer(self, src: "Node", dst: "Node", nbytes: int,
                 trace_parent: Optional[int] = None):
        """Generator moving ``nbytes`` from ``src`` to ``dst``.

        Local (same-node) transfers cost nothing: services co-located with
        their client short-circuit the network, as a real loopback would.
        ``trace_parent`` is the span id the NIC-occupation spans attach to
        when the cluster traces (the legacy engine path is the untraced
        seed-compatibility baseline and records no spans).
        """
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if src.name == dst.name:
            return
        if self.engine == "legacy":
            yield from self.nic(src.name).occupy(nbytes)
            yield self.sim.timeout(self.latency)
            yield from self.nic(dst.name).occupy(nbytes)
        else:
            sim = self.sim
            tracer = self.tracer
            digests = self.digests
            # Sender NIC: reserved in initiation order (the legacy resource
            # enqueued at the same instant), then one sleep to the moment the
            # message has fully arrived at the receiver NIC's queue.
            src_nic = self.nic(src.name)
            if self._observed:
                now = sim.now
                start = max(src_nic.free_at, now)
                src_done = src_nic.reserve(nbytes)
                if tracer is not None:
                    tracer.complete_span(
                        "net.tx", "net", ("link", src_nic.name),
                        start, src_done, parent_id=trace_parent,
                        args={"bytes": nbytes})
                if digests is not None:
                    digests.link(src_nic.name, start - now)
            else:
                src_done = src_nic.reserve(nbytes)
            yield sim.sleep(src_done + self.latency - sim.now)
            # Receiver NIC: reserved in arrival order.
            dst_nic = self.nic(dst.name)
            if self._observed:
                now = sim.now
                start = max(dst_nic.free_at, now)
                dst_done = dst_nic.reserve(nbytes)
                if tracer is not None:
                    tracer.complete_span(
                        "net.rx", "net", ("link", dst_nic.name),
                        start, dst_done, parent_id=trace_parent,
                        args={"bytes": nbytes})
                if digests is not None:
                    digests.link(dst_nic.name, start - now)
            else:
                dst_done = dst_nic.reserve(nbytes)
            yield sim.sleep(dst_done - sim.now)
        self.bytes_transferred += nbytes
        self.messages += 1


class Link:
    """One FIFO transmission queue of the queued model, with a CoDel signal."""

    __slots__ = ("sim", "bandwidth", "name", "free_at", "bytes_transferred",
                 "busy_time", "codel_target", "codel_interval", "codel_marks",
                 "max_standing_delay", "_above_since", "_next_mark",
                 "_episode_marks")

    def __init__(self, sim: "Simulator", bandwidth: float, name: str,
                 codel_target: float, codel_interval: float):
        self.sim = sim
        self.bandwidth = float(bandwidth)
        self.name = name
        self.free_at: float = 0.0
        self.bytes_transferred: int = 0
        self.busy_time: float = 0.0
        self.codel_target = float(codel_target)
        self.codel_interval = float(codel_interval)
        #: standing-queue episodes flagged (the "ECN mark" counter)
        self.codel_marks: int = 0
        #: worst queueing delay any reservation experienced
        self.max_standing_delay: float = 0.0
        self._above_since: Optional[float] = None
        self._next_mark: float = 0.0
        self._episode_marks: int = 0

    def reserve(self, nbytes: int) -> float:
        """Reserve the next FIFO slot; returns its finish time."""
        tx = nbytes / self.bandwidth
        now = self.sim.now
        free_at = self.free_at
        start = free_at if free_at > now else now
        done = start + tx
        self.free_at = done
        self.busy_time += tx
        self.bytes_transferred += nbytes

        # CoDel-style standing-queue detection on the sojourn (queueing)
        # delay this reservation experiences.
        standing = start - now
        if standing > self.max_standing_delay:
            self.max_standing_delay = standing
        if standing <= self.codel_target:
            self._above_since = None
            self._episode_marks = 0
        elif self._above_since is None:
            self._above_since = now
            self._next_mark = now + self.codel_interval
        elif now >= self._next_mark:
            # Delay stayed above target for a full interval: mark, then mark
            # again on CoDel's sqrt-shrinking schedule while it persists.
            self.codel_marks += 1
            self._episode_marks += 1
            self._next_mark = now + self.codel_interval / (self._episode_marks ** 0.5)
        return done

    def stats(self) -> dict:
        return {
            "name": self.name,
            "bytes": self.bytes_transferred,
            "busy_time": self.busy_time,
            "codel_marks": self.codel_marks,
            "max_standing_delay": self.max_standing_delay,
        }


class QueuedNetwork:
    """Per-link FIFO network over a two-tier (leaf switch) topology."""

    model = "queued"

    def __init__(self, sim: "Simulator", config: "ClusterConfig", obs=None):
        if config.network_latency < 0:
            raise ValueError("latency must be non-negative")
        if config.network_bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        self.sim = sim
        self.latency = float(config.network_latency)
        self.bandwidth = float(config.network_bandwidth)
        self.nodes_per_switch = max(1, int(config.nodes_per_switch))
        self.cross_switch_latency = (
            config.cross_switch_latency if config.cross_switch_latency is not None
            else 2.5 * self.latency)
        self.switch_bandwidth = (
            config.switch_bandwidth if config.switch_bandwidth is not None
            else 4.0 * self.bandwidth)
        self.codel_target = config.codel_target
        self.codel_interval = config.codel_interval
        #: fractional uniform jitter on propagation latency, drawn from the
        #: network RNG scope so workload streams are never perturbed
        self.jitter = float(config.network_jitter)
        self._jitter_stream = (
            sim.rng.scope("network").stream("jitter") if self.jitter else None)

        self._egress: Dict[str, Link] = {}
        self._ingress: Dict[str, Link] = {}
        self._uplinks: Dict[int, Link] = {}
        self._downlinks: Dict[int, Link] = {}
        self._switch_of: Dict[str, int] = {}
        #: span recorder / per-link sampler when the cluster observes its
        #: links; ``_observed`` is the single boolean every reservation
        #: site checks, so disabled runs pay one attribute test per hop
        self.tracer = (obs.tracer if obs is not None and obs.tracer.enabled
                       else None)
        self.telemetry = obs.link_telemetry if obs is not None else None
        self.digests = obs.digests if obs is not None else None
        self._observed = (self.tracer is not None
                          or self.telemetry is not None
                          or self.digests is not None)
        self.bytes_transferred: int = 0
        self.messages: int = 0
        self.cross_switch_messages: int = 0

    # ------------------------------------------------------------------
    def switch_of(self, node_name: str) -> int:
        """Leaf-switch index of a node (assigned in node-creation order)."""
        switch = self._switch_of.get(node_name)
        if switch is None:
            switch = len(self._switch_of) // self.nodes_per_switch
            self._switch_of[node_name] = switch
        return switch

    def _link(self, table: Dict, key, bandwidth: float, name: str) -> Link:
        link = table.get(key)
        if link is None:
            link = table[key] = Link(self.sim, bandwidth, name,
                                     self.codel_target, self.codel_interval)
        return link

    def nic(self, node_name: str) -> Link:
        """The egress link of ``node_name`` (kept for API compatibility)."""
        return self._link(self._egress, node_name, self.bandwidth,
                          f"egress:{node_name}")

    def _propagation(self) -> float:
        if self._jitter_stream is None:
            return self.latency
        return self.latency * (1.0 + float(
            self._jitter_stream.uniform(-self.jitter, self.jitter)))

    def transfer_time(self, nbytes: int) -> float:
        """Unloaded same-switch end-to-end time for a message of ``nbytes``."""
        return self.latency + 2 * (nbytes / self.bandwidth)

    def _reserve(self, link: Link, nbytes: int,
                 trace_parent: Optional[int]) -> float:
        """Reserve on an *observed* link: identical schedule to a plain
        ``link.reserve``, plus one telemetry sample and/or one link span
        recorded on values the reservation computed anyway."""
        now = self.sim.now
        start = link.free_at if link.free_at > now else now
        done = link.reserve(nbytes)
        if self.telemetry is not None:
            self.telemetry.record(link, now, start - now, nbytes)
        if self.tracer is not None:
            self.tracer.complete_span("net.link", "net", ("link", link.name),
                                      start, done, parent_id=trace_parent,
                                      args={"bytes": nbytes})
        if self.digests is not None:
            self.digests.link(link.name, start - now)
        return done

    def transfer(self, src: "Node", dst: "Node", nbytes: int,
                 trace_parent: Optional[int] = None):
        """Generator moving ``nbytes`` from ``src`` to ``dst``.

        Same-node transfers are free (loopback).  Same-switch transfers pay
        NIC egress + propagation + NIC ingress; cross-switch transfers
        additionally queue on the source switch's uplink and the destination
        switch's downlink and pay the longer cross-switch propagation.
        ``trace_parent`` is the span id the per-link spans attach to when
        the cluster traces.
        """
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if src.name == dst.name:
            return
        sim = self.sim
        observed = self._observed
        src_switch = self.switch_of(src.name)
        dst_switch = self.switch_of(dst.name)

        egress = self._link(self._egress, src.name, self.bandwidth,
                            f"egress:{src.name}")
        egress_done = (self._reserve(egress, nbytes, trace_parent) if observed
                       else egress.reserve(nbytes))

        if src_switch == dst_switch:
            yield sim.sleep(egress_done + self._propagation() - sim.now)
        else:
            # Hop 1: to the leaf switch, then queue on its shared uplink.
            yield sim.sleep(egress_done + self._propagation() / 2 - sim.now)
            uplink = self._link(self._uplinks, src_switch, self.switch_bandwidth,
                                f"uplink:sw{src_switch}")
            up_done = (self._reserve(uplink, nbytes, trace_parent) if observed
                       else uplink.reserve(nbytes))
            yield sim.sleep(up_done + self.cross_switch_latency - sim.now)
            # Hop 2: down through the destination switch's shared downlink.
            downlink = self._link(self._downlinks, dst_switch,
                                  self.switch_bandwidth, f"downlink:sw{dst_switch}")
            down_done = (self._reserve(downlink, nbytes, trace_parent)
                         if observed else downlink.reserve(nbytes))
            yield sim.sleep(down_done + self._propagation() / 2 - sim.now)
            self.cross_switch_messages += 1

        ingress = self._link(self._ingress, dst.name, self.bandwidth,
                             f"ingress:{dst.name}")
        ingress_done = (self._reserve(ingress, nbytes, trace_parent)
                        if observed else ingress.reserve(nbytes))
        yield sim.sleep(ingress_done - sim.now)

        self.bytes_transferred += nbytes
        self.messages += 1

    # ------------------------------------------------------------------
    def links(self) -> list:
        """Every link created so far (egress, ingress, up- and downlinks)."""
        return (list(self._egress.values()) + list(self._ingress.values())
                + list(self._uplinks.values()) + list(self._downlinks.values()))

    def codel_stats(self) -> dict:
        """Aggregate CoDel signal over all links (for benchmark reports)."""
        links = self.links()
        marks = sum(link.codel_marks for link in links)
        worst = max((link.max_standing_delay for link in links), default=0.0)
        return {
            "links": len(links),
            "codel_marks": marks,
            "max_standing_delay": worst,
            "cross_switch_messages": self.cross_switch_messages,
        }
