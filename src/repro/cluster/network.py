"""Network model: per-node NICs with latency + bandwidth costs.

The model is a full-bisection switch (as in a Grid'5000 cluster): a transfer
from ``src`` to ``dst`` occupies the sender NIC and then the receiver NIC for
``nbytes / bandwidth`` each, plus a one-way propagation latency.  Serializing
transfers on each NIC is what produces incast congestion at heavily used
servers — the phenomenon that makes a single storage target a bottleneck and
data striping worthwhile (design principle 2 of the paper).
"""

from __future__ import annotations

from typing import Dict, TYPE_CHECKING

from repro.simengine import Resource

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.node import Node
    from repro.simengine import Simulator


class NIC:
    """A node's network interface: a FIFO resource with fixed bandwidth."""

    def __init__(self, sim: "Simulator", bandwidth: float, name: str):
        self.sim = sim
        self.bandwidth = float(bandwidth)
        self.name = name
        self._port = Resource(sim, capacity=1)
        self.bytes_transferred: int = 0
        self.busy_time: float = 0.0

    def occupy(self, nbytes: int):
        """Generator occupying the NIC for the serialization time of ``nbytes``."""
        request = self._port.request()
        yield request
        start = self.sim.now
        try:
            yield self.sim.timeout(nbytes / self.bandwidth)
        finally:
            self.busy_time += self.sim.now - start
            self._port.release(request)
        self.bytes_transferred += nbytes


class Network:
    """Switch-based cluster network connecting every node to every other."""

    def __init__(self, sim: "Simulator", latency: float, bandwidth: float):
        if latency < 0:
            raise ValueError("latency must be non-negative")
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        self.sim = sim
        self.latency = float(latency)
        self.bandwidth = float(bandwidth)
        self._nics: Dict[str, NIC] = {}
        #: total bytes moved across the network
        self.bytes_transferred: int = 0
        #: total messages moved across the network
        self.messages: int = 0

    def nic(self, node_name: str) -> NIC:
        """The (lazily created) NIC of ``node_name``."""
        if node_name not in self._nics:
            self._nics[node_name] = NIC(self.sim, self.bandwidth,
                                        name=f"nic:{node_name}")
        return self._nics[node_name]

    def transfer_time(self, nbytes: int) -> float:
        """Unloaded end-to-end time for a message of ``nbytes``."""
        return self.latency + 2 * (nbytes / self.bandwidth)

    def transfer(self, src: "Node", dst: "Node", nbytes: int):
        """Generator moving ``nbytes`` from ``src`` to ``dst``.

        Local (same-node) transfers cost nothing: services co-located with
        their client short-circuit the network, as a real loopback would.
        """
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if src.name == dst.name:
            return
        yield from self.nic(src.name).occupy(nbytes)
        yield self.sim.timeout(self.latency)
        yield from self.nic(dst.name).occupy(nbytes)
        self.bytes_transferred += nbytes
        self.messages += 1
