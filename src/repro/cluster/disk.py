"""Disk model: a FIFO device with fixed per-operation overhead and bandwidth."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.simengine import Resource

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simengine import Simulator


class Disk:
    """A single storage device attached to a node.

    Concurrent I/O requests on the same disk are serialized (capacity-1
    resource); each request costs ``overhead + nbytes / bandwidth`` of
    simulated time.  Aggregate counters feed the benchmark reports.
    """

    def __init__(self, sim: "Simulator", bandwidth: float, overhead: float,
                 name: str = "disk", engine: str = "fast"):
        if bandwidth <= 0:
            raise ValueError("disk bandwidth must be positive")
        if overhead < 0:
            raise ValueError("disk overhead must be non-negative")
        self.sim = sim
        self.bandwidth = float(bandwidth)
        self.overhead = float(overhead)
        self.name = name
        self.engine = engine
        #: when the last reserved I/O finishes (analytic FIFO queue)
        self.free_at: float = 0.0
        self._device = Resource(sim, capacity=1) if engine == "legacy" else None
        #: total bytes read + written through this disk
        self.bytes_transferred: int = 0
        #: number of I/O operations served
        self.operations: int = 0
        #: total busy time of the device
        self.busy_time: float = 0.0

    def io_time(self, nbytes: int) -> float:
        """Service time of a single ``nbytes`` I/O (excluding queueing)."""
        return self.overhead + nbytes / self.bandwidth

    def io(self, nbytes: int):
        """Simulated-process generator performing one I/O of ``nbytes``.

        The fast engine reserves the device's FIFO queue analytically
        (``free_at``) and sleeps once until the I/O completes — the same
        schedule the legacy capacity-1 resource produces, without the
        request/grant/release events.
        """
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if self._device is None:
            sim = self.sim
            service = self.overhead + nbytes / self.bandwidth
            now = sim.now
            start = self.free_at if self.free_at > now else now
            finish = start + service
            self.free_at = finish
            self.busy_time += service
            self.bytes_transferred += nbytes
            self.operations += 1
            yield sim.sleep(finish - now)
            return
        request = self._device.request()
        yield request
        start = self.sim.now
        try:
            yield self.sim.timeout(self.io_time(nbytes))
        finally:
            self.busy_time += self.sim.now - start
            self._device.release(request)
        self.bytes_transferred += nbytes
        self.operations += 1

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` time the device was busy."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time / elapsed)
