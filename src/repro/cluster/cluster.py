"""Cluster builder: nodes + network + RPC under one simulator."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cluster.config import ClusterConfig
from repro.cluster.disk import Disk
from repro.cluster.network import Network
from repro.cluster.node import Node
from repro.cluster.rpc import RpcTransport
from repro.errors import SimulationError
from repro.simengine import Simulator


class Cluster:
    """A simulated cluster owning the simulator, the network and the nodes.

    Nodes are created on demand with :meth:`add_node` / :meth:`add_nodes`.
    Storage deployments (BlobSeer services, Lustre-like OSTs) and MPI jobs
    place themselves on these nodes.
    """

    def __init__(self, config: Optional[ClusterConfig] = None,
                 sim: Optional[Simulator] = None, seed: int = 0):
        self.config = config or ClusterConfig()
        self.sim = sim or Simulator(seed=seed)
        self.network = Network(self.sim, self.config.network_latency,
                               self.config.network_bandwidth)
        self.rpc = RpcTransport(self)
        self.nodes: Dict[str, Node] = {}

    # ------------------------------------------------------------------
    def add_node(self, name: str, role: str = "compute",
                 with_disk: bool = False) -> Node:
        """Create one node; storage roles usually request ``with_disk=True``."""
        if name in self.nodes:
            raise SimulationError(f"duplicate node name {name!r}")
        disk = None
        if with_disk:
            disk = Disk(self.sim, self.config.disk_bandwidth,
                        self.config.disk_overhead, name=f"disk:{name}")
        node = Node(self.sim, name, self.network, disk=disk, role=role)
        self.nodes[name] = node
        return node

    def add_nodes(self, prefix: str, count: int, role: str = "compute",
                  with_disk: bool = False) -> List[Node]:
        """Create ``count`` nodes named ``{prefix}{index}``."""
        return [self.add_node(f"{prefix}{index}", role=role, with_disk=with_disk)
                for index in range(count)]

    def node(self, name: str) -> Node:
        """Look up a node by name."""
        try:
            return self.nodes[name]
        except KeyError:
            raise SimulationError(f"unknown node {name!r}") from None

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time."""
        return self.sim.now

    def run(self, **kwargs):
        """Forward to :meth:`repro.simengine.Simulator.run`."""
        return self.sim.run(**kwargs)

    def stats(self) -> dict:
        """Aggregate transport statistics (for benchmark reports)."""
        disks = [node.disk for node in self.nodes.values() if node.disk]
        return {
            "nodes": len(self.nodes),
            "network_bytes": self.network.bytes_transferred,
            "network_messages": self.network.messages,
            "rpc_calls": self.rpc.total_calls,
            "disk_bytes": sum(disk.bytes_transferred for disk in disks),
            "disk_operations": sum(disk.operations for disk in disks),
        }
