"""Cluster builder: nodes + network + RPC under one simulator."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.cluster.config import ClusterConfig
from repro.cluster.disk import Disk
from repro.cluster.network import Network, QueuedNetwork
from repro.cluster.node import Node
from repro.cluster.rpc import RpcTransport
from repro.errors import SimulationError
from repro.obs import Observability
from repro.simengine import Simulator


def placement_map(num_ranks: int, ranks_per_node: Optional[int] = None,
                  placement: Optional[Sequence[int]] = None) -> List[int]:
    """Rank -> node-index map of an MPI job.

    ``placement`` (explicit) wins: one node index per rank, any shape —
    the property suite feeds arbitrary maps through this to prove placement
    never changes read results.  Otherwise ``ranks_per_node`` consecutive
    ranks share each node (the common dense block placement).  Node indices
    are compacted to ``0..n-1`` in first-appearance order so every index
    names a node that actually hosts a rank.
    """
    if num_ranks <= 0:
        raise SimulationError(f"num_ranks must be positive, got {num_ranks}")
    if placement is not None:
        if len(placement) != num_ranks:
            raise SimulationError(
                f"placement needs one node index per rank "
                f"({num_ranks}), got {len(placement)}")
        if any(index < 0 for index in placement):
            raise SimulationError("placement indices must be non-negative")
        compact: Dict[int, int] = {}
        return [compact.setdefault(index, len(compact))
                for index in placement]
    density = 1 if ranks_per_node is None else ranks_per_node
    if density <= 0:
        raise SimulationError(
            f"ranks_per_node must be positive, got {density}")
    return [rank // density for rank in range(num_ranks)]


class Cluster:
    """A simulated cluster owning the simulator, the network and the nodes.

    Nodes are created on demand with :meth:`add_node` / :meth:`add_nodes`.
    Storage deployments (BlobSeer services, Lustre-like OSTs) and MPI jobs
    place themselves on these nodes.
    """

    def __init__(self, config: Optional[ClusterConfig] = None,
                 sim: Optional[Simulator] = None, seed: int = 0):
        self.config = config or ClusterConfig()
        if sim is None:
            scheduler = self.config.scheduler or (
                "heapq" if self.config.engine == "legacy" else "calendar")
            sim = Simulator(seed=seed, scheduler=scheduler)
        self.sim = sim
        #: tracer + metrics registry + link telemetry + latency digests +
        #: flight recorder (repro.obs); the tracer is the shared no-op
        #: singleton unless ``config.tracing``
        self.obs = Observability(
            self.sim, tracing=self.config.tracing,
            link_telemetry=self.config.tracing
            and self.config.network_model == "queued",
            latency_digests=self.config.latency_digests,
            flight_recorder=self.config.flight_recorder,
            flight_capacity=self.config.flight_capacity)
        if self.config.network_model == "queued":
            self.network = QueuedNetwork(self.sim, self.config, obs=self.obs)
        elif self.config.network_model == "bottleneck":
            self.network = Network(self.sim, self.config.network_latency,
                                   self.config.network_bandwidth,
                                   engine=self.config.engine, obs=self.obs)
        else:
            raise SimulationError(
                f"unknown network_model {self.config.network_model!r}; "
                "use 'bottleneck' or 'queued'")
        self.rpc = RpcTransport(self)
        self.nodes: Dict[str, Node] = {}

    # ------------------------------------------------------------------
    def add_node(self, name: str, role: str = "compute",
                 with_disk: bool = False) -> Node:
        """Create one node; storage roles usually request ``with_disk=True``."""
        if name in self.nodes:
            raise SimulationError(f"duplicate node name {name!r}")
        disk = None
        if with_disk:
            disk = Disk(self.sim, self.config.disk_bandwidth,
                        self.config.disk_overhead, name=f"disk:{name}",
                        engine=self.config.engine)
        node = Node(self.sim, name, self.network, disk=disk, role=role)
        self.nodes[name] = node
        return node

    def add_nodes(self, prefix: str, count: int, role: str = "compute",
                  with_disk: bool = False) -> List[Node]:
        """Create ``count`` nodes named ``{prefix}{index}``."""
        return [self.add_node(f"{prefix}{index}", role=role, with_disk=with_disk)
                for index in range(count)]

    def place_ranks(self, prefix: str, num_ranks: int,
                    ranks_per_node: Optional[int] = None,
                    placement: Optional[Sequence[int]] = None,
                    role: str = "compute") -> List[Node]:
        """Create compute nodes for an MPI job and return one *per rank*.

        The returned list is rank-indexed (shared nodes repeat), driven by
        :func:`placement_map`.  ``ranks_per_node`` defaults to the cluster
        config's ``ranks_per_node`` (1 = the paper's one-process-per-node
        placement); an explicit ``placement`` map overrides it.
        """
        if ranks_per_node is None and placement is None:
            ranks_per_node = self.config.ranks_per_node
        indices = placement_map(num_ranks, ranks_per_node=ranks_per_node,
                                placement=placement)
        nodes = self.add_nodes(prefix, max(indices) + 1, role=role)
        return [nodes[index] for index in indices]

    def node(self, name: str) -> Node:
        """Look up a node by name."""
        try:
            return self.nodes[name]
        except KeyError:
            raise SimulationError(f"unknown node {name!r}") from None

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time."""
        return self.sim.now

    def run(self, **kwargs):
        """Forward to :meth:`repro.simengine.Simulator.run`."""
        return self.sim.run(**kwargs)

    def stats(self) -> dict:
        """Aggregate transport statistics (for benchmark reports)."""
        disks = [node.disk for node in self.nodes.values() if node.disk]
        return {
            "nodes": len(self.nodes),
            "network_bytes": self.network.bytes_transferred,
            "network_messages": self.network.messages,
            "rpc_calls": self.rpc.total_calls,
            "disk_bytes": sum(disk.bytes_transferred for disk in disks),
            "disk_operations": sum(disk.operations for disk in disks),
        }
