"""Simulated RPC transport between cluster services.

A :class:`Service` is an object bound to a :class:`~repro.cluster.node.Node`
whose public methods are *generator methods*: they may yield simulation
events (disk I/O, lock waits) and finally ``return`` their result.
:func:`remote_call` wraps an invocation with the network cost of shipping the
request and the response and a small per-RPC handling overhead.

The payload sizes are explicit arguments rather than being derived from
serializing real Python objects — the simulation transfers *sizes*, the
functional layer transfers *values*; both travel together through the same
call so behaviour and cost cannot drift apart.
"""

from __future__ import annotations

from typing import Any, TYPE_CHECKING

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.cluster import Cluster
    from repro.cluster.node import Node


class Service:
    """Base class of every simulated service (provider, lock manager, ...)."""

    def __init__(self, node: "Node", name: str):
        self.node = node
        self.name = name
        #: number of RPCs handled, per method name
        self.calls: dict = {}

    def _account(self, method: str) -> None:
        self.calls[method] = self.calls.get(method, 0) + 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Service {self.name} on {self.node.name}>"


class RpcTransport:
    """Cost model shared by every remote call on a cluster."""

    def __init__(self, cluster: "Cluster"):
        self.cluster = cluster
        self.total_calls: int = 0
        self.total_request_bytes: int = 0
        self.total_response_bytes: int = 0
        # observability hooks, resolved once: each is None when disabled,
        # so the per-call cost of a disabled channel is one attribute test
        obs = cluster.obs
        self._tracer = obs.tracer if obs.tracer.enabled else None
        self._digests = obs.digests
        self._flight = obs.flight

    def call(self, caller: "Node", service: Service, method: str,
             request_bytes: int, response_bytes, *args: Any,
             _trace_parent: Any = None, **kwargs: Any):
        """Invoke ``service.method(*args, **kwargs)`` with transport costs.

        The method must be a generator function; its return value is returned
        to the caller after the response transfer completes.
        ``response_bytes`` may be a callable evaluated on the handler's
        result — the hook for responses whose wire size only the server
        knows (e.g. speculative metadata prefetches riding on a batched
        fetch), mirroring the callable payload sizing of the simulated
        collectives.

        ``_trace_parent`` (keyword-only, never forwarded to the handler) is
        the span id the request/response link transfers attach to when the
        cluster traces.
        """
        sim = self.cluster.sim
        config = self.cluster.config
        handler = getattr(service, method, None)
        if handler is None:
            raise SimulationError(f"service {service.name} has no method {method!r}")

        self.total_calls += 1
        self.total_request_bytes += request_bytes
        service._account(method)
        started = sim.now

        # request
        yield from self.cluster.network.transfer(
            caller, service.node, max(request_bytes, config.control_message_size),
            trace_parent=_trace_parent)
        # server window: handling overhead plus the handler body
        serve_started = sim.now
        if config.rpc_handling_overhead:
            yield sim.timeout(config.rpc_handling_overhead)
        result = yield from handler(*args, **kwargs)
        if self._tracer is not None:
            self._tracer.complete_span(
                "rpc.serve", "rpc", ("shard", service.node.name),
                serve_started, sim.now, parent_id=_trace_parent)
        # response (sized from the result when the caller passed a callable)
        if callable(response_bytes):
            response_bytes = response_bytes(result)
        self.total_response_bytes += response_bytes
        yield from self.cluster.network.transfer(
            service.node, caller, max(response_bytes, config.control_message_size),
            trace_parent=_trace_parent)
        if self._digests is not None:
            self._digests.rpc(method, sim.now - started)
        if self._flight is not None:
            self._flight.record(started, sim.now, "rpc", service.name, method)
        return result


    def call_batch(self, caller: "Node", calls, *, _trace_parent: Any = None):
        """Issue several independent RPCs concurrently; return their results.

        ``calls`` is a sequence of ``(service, method, request_bytes,
        response_bytes, args, kwargs)`` tuples (``args`` and ``kwargs``
        optional).  All calls start at the current instant and the batch
        completes when the slowest response lands — one
        :class:`~repro.simengine.Fanout` transaction instead of one
        bootstrap/termination event pair per shard.  Results come back in
        call order.

        ``_trace_parent`` (keyword-only, like :meth:`call`'s) is threaded
        into every member call, so all of a batch's request/response link
        transfers attach to the one span the caller opened for the fan-out.
        """
        generators = []
        for spec in calls:
            service, method, request_bytes, response_bytes, *rest = spec
            args = rest[0] if rest else ()
            kwargs = rest[1] if len(rest) > 1 else {}
            generators.append(self.call(caller, service, method,
                                        request_bytes, response_bytes, *args,
                                        _trace_parent=_trace_parent,
                                        **kwargs))
        results = yield self.cluster.sim.fanout(generators)
        return results


def remote_call(cluster: "Cluster", caller: "Node", service: Service, method: str,
                request_bytes: int, response_bytes: int, *args: Any, **kwargs: Any):
    """Convenience wrapper around :meth:`RpcTransport.call`."""
    result = yield from cluster.rpc.call(caller, service, method, request_bytes,
                                         response_bytes, *args, **kwargs)
    return result
