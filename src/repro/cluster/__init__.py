"""Simulated cluster: nodes, disks, network and RPC transport.

The storage services (data providers, metadata providers, version manager,
OSTs, MDS, lock manager) and the MPI ranks all run as discrete-event
processes placed on :class:`~repro.cluster.node.Node` instances.  Time is
charged for:

* network transfers — per-message latency plus ``size / bandwidth``, with the
  sender's and receiver's NICs modelled as FIFO resources so that concurrent
  transfers through the same node queue up (this is what makes a single
  storage server a bottleneck and striping beneficial);
* disk I/O — per-operation overhead plus ``size / disk_bandwidth``, with one
  disk resource per storage node;
* service handlers — whatever the handler itself yields (e.g. lock waiting).

The defaults approximate the Grid'5000 nodes used in the paper (GbE network,
SATA disks); absolute values only set the scale of the simulated-throughput
axis, the comparative shapes do not depend on them.
"""

from repro.cluster.config import ClusterConfig
from repro.cluster.disk import Disk
from repro.cluster.network import Network
from repro.cluster.node import Node
from repro.cluster.cluster import Cluster, placement_map
from repro.cluster.rpc import RpcTransport, Service, remote_call

__all__ = [
    "ClusterConfig",
    "Cluster",
    "placement_map",
    "Disk",
    "Network",
    "Node",
    "RpcTransport",
    "Service",
    "remote_call",
]
