"""A node of the simulated cluster."""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.disk import Disk
    from repro.cluster.network import Network
    from repro.simengine import Simulator


class Node:
    """A machine: a name, a NIC on the cluster network, optionally a disk.

    Compute nodes (MPI ranks) normally have no disk; storage nodes (data
    providers, OSTs) have one.  Roles are free-form strings used only for
    reporting.
    """

    def __init__(self, sim: "Simulator", name: str, network: "Network",
                 disk: Optional["Disk"] = None, role: str = "compute"):
        self.sim = sim
        self.name = name
        self.network = network
        self.disk = disk
        self.role = role

    def send(self, dst: "Node", nbytes: int):
        """Generator transferring ``nbytes`` from this node to ``dst``."""
        yield from self.network.transfer(self, dst, nbytes)

    def disk_io(self, nbytes: int):
        """Generator performing a local disk I/O (no-op without a disk)."""
        if self.disk is None:
            return
        yield from self.disk.io(nbytes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Node {self.name} role={self.role}>"
