"""The paper's core contribution: a versioning storage backend with native
non-contiguous, MPI-atomic vectored I/O.

The stock BlobSeer interface (:mod:`repro.blobseer`) supports atomic reads
and writes of *contiguous* regions only.  This package extends it — exactly
as Section V of the paper describes — with:

* :class:`~repro.vstore.client.VectoredClient`: List-I/O style primitives
  ``vwrite`` / ``vread`` that carry a whole non-contiguous access in a single
  call and publish it as a single snapshot, so concurrent overlapping
  accesses never interleave (MPI atomicity);
* :class:`~repro.vstore.backend.VersioningBackend`: a synchronous facade that
  deploys a private simulated cluster and exposes the same operations as
  plain method calls — the entry point used by the quickstart example and by
  applications that do not need to drive the simulation themselves.
"""

from repro.vstore.client import VectoredClient
from repro.vstore.backend import VersioningBackend

__all__ = ["VectoredClient", "VersioningBackend"]
