"""Synchronous facade over the versioning storage backend.

:class:`VersioningBackend` hides the discrete-event machinery: it owns a
private :class:`~repro.cluster.cluster.Cluster`, deploys BlobSeer services on
it, and exposes ``create_blob`` / ``vwrite`` / ``vread`` / ``read`` / ``write``
as ordinary blocking methods.  Each call spawns a client process on the
facade's compute node and runs the simulation until the operation completes,
so single-client applications (the quickstart, the producer/consumer example)
never have to write generator code.

Benchmarks and multi-writer experiments do *not* use this facade — they place
many :class:`~repro.vstore.client.VectoredClient` instances on distinct
compute nodes of a shared cluster so that their operations genuinely overlap
in simulated time.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

from repro.blobseer.blob import BlobDescriptor
from repro.blobseer.client import WriteReceipt
from repro.blobseer.deployment import BlobSeerDeployment
from repro.cluster import Cluster, ClusterConfig
from repro.core.listio import IOVector
from repro.vstore.client import VectoredClient


class VersioningBackend:
    """Single-client, synchronous entry point to the paper's storage backend."""

    def __init__(self, num_providers: int = 4, num_metadata_providers: int = 1,
                 chunk_size: int = 64 * 1024, allocation: str = "round_robin",
                 config: Optional[ClusterConfig] = None, seed: int = 0,
                 publish_cost: float = 0.0):
        self.cluster = Cluster(config=config, seed=seed)
        self.deployment = BlobSeerDeployment(
            self.cluster,
            num_providers=num_providers,
            num_metadata_providers=num_metadata_providers,
            chunk_size=chunk_size,
            allocation=allocation,
            publish_cost=publish_cost,
        )
        self._client_node = self.cluster.add_node("facade-client", role="compute")
        self.client = VectoredClient(self.deployment, self._client_node,
                                     name="facade")

    # ------------------------------------------------------------------
    def _run(self, generator):
        """Drive one client operation to completion and return its result."""
        process = self.cluster.sim.process(generator, name="facade-op")
        return self.cluster.sim.run(stop_event=process)

    # ------------------------------------------------------------------
    # namespace
    # ------------------------------------------------------------------
    def create_blob(self, blob_id: str = "blob", size: int = 0,
                    chunk_size: Optional[int] = None) -> str:
        """Create a BLOB and return its id (snapshot 0 = all zeros)."""
        descriptor: BlobDescriptor = self._run(
            self.client.create_blob(blob_id, size, chunk_size))
        return descriptor.blob_id

    def describe(self, blob_id: str) -> BlobDescriptor:
        """Return the BLOB's descriptor (chunk size, capacity, ...)."""
        return self._run(self.client.open_blob(blob_id))

    def latest_version(self, blob_id: str) -> int:
        """Newest published snapshot version of the BLOB."""
        return self._run(self.client.latest_version(blob_id))

    # ------------------------------------------------------------------
    # vectored (non-contiguous) interface — the paper's contribution
    # ------------------------------------------------------------------
    def vwrite(self, blob_id: str,
               access: Union[IOVector, Sequence[Tuple[int, bytes]]]) -> WriteReceipt:
        """Atomic non-contiguous write; returns the receipt (with ``version``)."""
        return self._run(self.client.vwrite_and_wait(blob_id, access))

    def vread(self, blob_id: str,
              access: Union[IOVector, Sequence[Tuple[int, int]]],
              version: Optional[int] = None) -> List[bytes]:
        """Non-contiguous read of one consistent snapshot (default: latest)."""
        return self._run(self.client.vread(blob_id, access, version))

    # ------------------------------------------------------------------
    # queued writes (the write-pipeline coalescing interface)
    # ------------------------------------------------------------------
    def queue_vwrite(self, blob_id: str,
                     access: Union[IOVector, Sequence[Tuple[int, bytes]]]):
        """Stage a vectored write for a later coalesced commit.

        Queued writes are invisible until :meth:`flush` publishes them — all
        writes queued in between become *one* snapshot (one allocation, one
        version ticket, one metadata build).  Returns the
        :class:`~repro.blobseer.writepath.batch.StagedWrite` handle.
        """
        return self._run(self.client.vwrite_queued(blob_id, access))

    def flush(self, blob_id: Optional[str] = None) -> List[WriteReceipt]:
        """Commit and publish queued writes (the coalescer's barrier).

        Returns the receipts of the snapshot batches this flush produced.
        """
        return self._run(self.client.vbarrier(blob_id))

    # ------------------------------------------------------------------
    # classic contiguous interface (stock BlobSeer semantics)
    # ------------------------------------------------------------------
    def write(self, blob_id: str, offset: int, data: bytes) -> WriteReceipt:
        """Contiguous write (a one-element vector)."""
        return self.vwrite(blob_id, [(offset, bytes(data))])

    def read(self, blob_id: str, offset: int, size: int,
             version: Optional[int] = None) -> bytes:
        """Contiguous read from one snapshot."""
        return self.vread(blob_id, [(offset, size)], version)[0]

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Cluster + storage statistics (bytes moved, chunks, snapshots, ...)."""
        combined = dict(self.cluster.stats())
        combined.update(self.deployment.stats())
        return combined
