"""Vectored (List-I/O) client: non-contiguous MPI-atomic reads and writes.

This is the access-interface extension of the paper: a single call describes
a complex non-contiguous access, the write path uploads all chunks without
any coordination, and the snapshot publication of the version manager orders
whole vectored writes — so the overlapped regions of concurrent writes always
contain data from exactly one writer (MPI atomicity), with no locking
anywhere.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

from repro.blobseer.client import BlobClient, WriteReceipt
from repro.core.listio import IOVector
from repro.errors import StorageError

WritePairs = Sequence[Tuple[int, bytes]]
ReadPairs = Sequence[Tuple[int, int]]


class VectoredClient(BlobClient):
    """BlobSeer client extended with the paper's non-contiguous primitives."""

    # ------------------------------------------------------------------
    @staticmethod
    def _as_write_vector(access: Union[IOVector, WritePairs]) -> IOVector:
        if isinstance(access, IOVector):
            if not access.is_write:
                raise StorageError("vwrite() needs a write vector")
            return access
        return IOVector.for_write(access)

    @staticmethod
    def _as_read_vector(access: Union[IOVector, ReadPairs]) -> IOVector:
        if isinstance(access, IOVector):
            if not access.is_read:
                raise StorageError("vread() needs a read vector")
            return access
        return IOVector.for_read(access)

    # ------------------------------------------------------------------
    def vwrite(self, blob_id: str, access: Union[IOVector, WritePairs]):
        """Atomically write a set of non-contiguous regions as one snapshot.

        ``access`` is either an :class:`~repro.core.listio.IOVector` or a
        plain ``[(offset, payload), ...]`` list.  Returns a
        :class:`~repro.blobseer.client.WriteReceipt` whose ``version`` names
        the snapshot this write produced.
        """
        vector = self._as_write_vector(access)
        receipt = yield from self._vectored_write(blob_id, vector)
        return receipt

    def vread(self, blob_id: str, access: Union[IOVector, ReadPairs],
              version: Optional[int] = None):
        """Read a set of non-contiguous regions from one published snapshot.

        Returns one ``bytes`` object per requested range, all taken from the
        same consistent snapshot (the latest published one by default).
        """
        vector = self._as_read_vector(access)
        pieces = yield from self._vectored_read(blob_id, vector, version)
        return pieces

    def vwrite_and_wait(self, blob_id: str, access: Union[IOVector, WritePairs]):
        """Like :meth:`vwrite`, then block until the snapshot is published.

        MPI-I/O write calls in atomic mode return once their effects are
        visible to subsequent reads, so the ADIO driver uses this variant.
        """
        receipt = yield from self.vwrite(blob_id, access)
        yield from self.wait_published(blob_id, receipt.version)
        return receipt
