"""Vectored (List-I/O) client: non-contiguous MPI-atomic reads and writes.

This is the access-interface extension of the paper: a single call describes
a complex non-contiguous access, the write path uploads all chunks without
any coordination, and the snapshot publication of the version manager orders
whole vectored writes — so the overlapped regions of concurrent writes always
contain data from exactly one writer (MPI atomicity), with no locking
anywhere.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

from repro.blobseer.client import BlobClient
from repro.blobseer.writepath import WriteCoalescer
from repro.core.listio import IOVector
from repro.errors import StorageError

WritePairs = Sequence[Tuple[int, bytes]]
ReadPairs = Sequence[Tuple[int, int]]


class VectoredClient(BlobClient):
    """BlobSeer client extended with the paper's non-contiguous primitives.

    On top of the immediate :meth:`vwrite`/:meth:`vread` pair, the vectored
    client exposes the write-pipeline subsystem's *queued* interface: writes
    staged with :meth:`vwrite_queued` are coalesced into one snapshot batch
    per BLOB when :meth:`vflush`/:meth:`vbarrier` runs.  ``coalesce_max_
    writes`` / ``coalesce_max_bytes`` bound a batch (crossing either flushes
    automatically) and ``coalesce_max_delay`` bounds how long a queued write
    may wait before a watchdog flushes it (simulated seconds); by default
    batches grow until an explicit flush.
    """

    def __init__(self, *args, coalesce_max_writes: Optional[int] = None,
                 coalesce_max_bytes: Optional[int] = None,
                 coalesce_max_delay: Optional[float] = None, **kwargs):
        super().__init__(*args, **kwargs)
        self.coalescer = WriteCoalescer(
            self, max_batch_writes=coalesce_max_writes,
            max_batch_bytes=coalesce_max_bytes,
            flush_max_delay=coalesce_max_delay)

    # ------------------------------------------------------------------
    @staticmethod
    def _as_write_vector(access: Union[IOVector, WritePairs]) -> IOVector:
        if isinstance(access, IOVector):
            if not access.is_write:
                raise StorageError("vwrite() needs a write vector")
            return access
        return IOVector.for_write(access)

    @staticmethod
    def _as_read_vector(access: Union[IOVector, ReadPairs]) -> IOVector:
        if isinstance(access, IOVector):
            if not access.is_read:
                raise StorageError("vread() needs a read vector")
            return access
        return IOVector.for_read(access)

    # ------------------------------------------------------------------
    def vwrite(self, blob_id: str, access: Union[IOVector, WritePairs]):
        """Atomically write a set of non-contiguous regions as one snapshot.

        ``access`` is either an :class:`~repro.core.listio.IOVector` or a
        plain ``[(offset, payload), ...]`` list.  Returns a
        :class:`~repro.blobseer.client.WriteReceipt` whose ``version`` names
        the snapshot this write produced.
        """
        vector = self._as_write_vector(access)
        receipt = yield from self._vectored_write(blob_id, vector)
        return receipt

    def vread(self, blob_id: str, access: Union[IOVector, ReadPairs],
              version: Optional[int] = None):
        """Read a set of non-contiguous regions from one published snapshot.

        Returns one ``bytes`` object per requested range, all taken from the
        same consistent snapshot (the latest published one by default).

        A default read may consume a one-shot hint planted at this client's
        own last barrier or collective commit instead of asking the version
        manager for ``latest`` — it then observes everything this client
        synchronized on, but not writes another client published *after*
        that fence.  When cross-client freshness beyond the last fence
        matters, pass an explicit version (e.g. from
        :meth:`~repro.blobseer.client.BlobClient.latest_version` or
        ``wait_published``) — those paths always round-trip.
        """
        vector = self._as_read_vector(access)
        pieces = yield from self._vectored_read(blob_id, vector, version)
        return pieces

    def vwrite_and_wait(self, blob_id: str, access: Union[IOVector, WritePairs]):
        """Like :meth:`vwrite`, then block until the snapshot is published.

        MPI-I/O write calls in atomic mode return once their effects are
        visible to subsequent reads, so the ADIO driver uses this variant.
        """
        receipt = yield from self.vwrite(blob_id, access)
        yield from self.wait_published(blob_id, receipt.version)
        return receipt

    # ------------------------------------------------------------------
    # queued writes (the write-pipeline subsystem's coalescing interface)
    # ------------------------------------------------------------------
    def vwrite_queued(self, blob_id: str, access: Union[IOVector, WritePairs]):
        """Stage an atomic vectored write for a later coalesced commit.

        The write stays invisible to every reader until :meth:`vflush` /
        :meth:`vbarrier` commits its batch; queue order is preserved, so the
        eventual snapshot equals applying the queued writes serially.
        Returns the :class:`~repro.blobseer.writepath.batch.StagedWrite`
        handle (its ``receipt`` is filled at flush time).
        """
        vector = self._as_write_vector(access)
        staged = yield from self.coalescer.enqueue(blob_id, vector)
        return staged

    def vflush(self, blob_id: Optional[str] = None):
        """Commit queued writes as merged snapshot batches (one per BLOB).

        Returns the commit receipts.  Publication of the batches may still
        be in flight; use :meth:`vbarrier` when subsequent reads must see
        the queued writes.
        """
        receipts = yield from self.coalescer.flush(blob_id)
        return receipts

    def vbarrier(self, blob_id: Optional[str] = None):
        """Flush queued writes and wait until they are published (readable).

        The explicit atomic barrier of the write pipeline: after it returns,
        every write queued before the call is visible to any reader.
        """
        receipts = yield from self.coalescer.barrier(blob_id)
        return receipts
