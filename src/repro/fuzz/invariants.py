"""The fuzzer's invariant checkers: what every run is judged against.

Seven checkers, each a pure function of a completed run's observations
(:class:`RunContext`), each returning a list of anomaly strings (empty
means the invariant held).  They encode the contracts the suites in
``tests/`` pin one scenario at a time:

* ``byte_identity``        — every read and the final contents equal the
  serial oracle (rank order for ordered writes, publication-ticket order
  for concurrent atomic writers, fault windows masked);
* ``version_monotonicity`` — every assigned ticket published, in order,
  nothing pending, aborts exactly matching the injected faults;
* ``stats_partition``      — the metrics registry's partition identities
  (lookup partition, shared-cache partition, cross-surface fall-through)
  hold over all clients (:func:`repro.obs.views.collect_all`);
* ``no_hang``              — the run finished inside its event budget and
  never deadlocked;
* ``clean_fault``          — injected deaths surfaced as errors on *every*
  rank (nobody hung, nobody silently succeeded), the doomed rank saw the
  original ``StorageError``, the post-fault probe phase succeeded — and
  no phase failed *without* an injected fault;
* ``coop_tier``            — cooperative peer-cache conservation: peer
  counters are zero without the tier; with it, served hits equal admitted
  plus rejected on the client side and every client's lookup partition
  (private + shared + peer + fetched) stays exact;
* ``snapshot_stability``   — two independent fresh-client read-backs of
  the latest snapshot return identical bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.fuzz.injectors import Injector, death_injector_for_phase
from repro.fuzz.oracle import MaskedOracle
from repro.fuzz.scenario import (
    Scenario,
    phase_extent,
    phase_read_regions,
    phase_write_pairs,
)
from repro.obs.views import collect_all

#: checker names, in evaluation order
CHECKER_NAMES = ("no_hang", "clean_fault", "byte_identity",
                 "version_monotonicity", "stats_partition", "coop_tier",
                 "snapshot_stability")


@dataclass
class RunContext:
    """Everything the checkers need from one executed scenario."""

    scenario: Scenario
    path: str
    cluster: object = None
    deployment: object = None
    drivers: Dict[int, object] = field(default_factory=dict)
    comm: object = None
    all_clients: List[object] = field(default_factory=list)
    injectors: List[Injector] = field(default_factory=list)
    #: ``[phase][rank]`` outcome: ``"ok"`` or the exception type name
    phase_outcomes: List[List[str]] = field(default_factory=list)
    #: ``[phase][rank]`` published version of an atomic write (else None)
    phase_versions: List[List[Optional[int]]] = field(default_factory=list)
    #: ``[phase][rank]`` bytes returned by a read phase (else None)
    phase_reads: List[List[Optional[bytes]]] = field(default_factory=list)
    #: fresh-client whole-file read-backs (two for stability)
    final_reads: List[bytes] = field(default_factory=list)
    event_budget: int = 0
    events_used: int = 0
    deadlocked: bool = False
    budget_exceeded: bool = False
    #: failures outside any phase (rank crash, adversary error, ...)
    execution_anomalies: List[str] = field(default_factory=list)

    @property
    def finished(self) -> bool:
        return not (self.deadlocked or self.budget_exceeded)

    def expected_aborts(self) -> int:
        return sum(1 for injector in self.injectors
                   if injector.fired and injector.aborts_ticket)


# ----------------------------------------------------------------------
# the oracle reconstruction (shared by byte_identity)
# ----------------------------------------------------------------------
def replay_oracle(ctx: RunContext) -> MaskedOracle:
    """The serial expectation after every phase, fault windows masked."""
    scenario = ctx.scenario
    oracle = MaskedOracle(scenario.file_size)
    for index, phase in enumerate(scenario.phases):
        if not phase.is_write or index >= len(ctx.phase_outcomes):
            continue
        outcomes = ctx.phase_outcomes[index]
        death = death_injector_for_phase(ctx.injectors, index)
        died = death is not None and death.fired
        if phase.kind == "atomic_write":
            entries = []
            for rank in range(scenario.num_ranks):
                version = ctx.phase_versions[index][rank]
                if outcomes[rank] == "ok" and version is not None:
                    entries.append((version, rank))
            # publication-ticket order IS the atomic serialization order
            for _version, rank in sorted(entries):
                oracle.apply_pairs(
                    phase_write_pairs(phase, rank, scenario.num_ranks))
            for rank in range(scenario.num_ranks):
                if outcomes[rank] != "ok":
                    for offset, payload in phase_write_pairs(
                            phase, rank, scenario.num_ranks):
                        oracle.mask(offset, offset + len(payload))
        elif died and death.masks_phase or any(o != "ok" for o in outcomes):
            # surviving aggregators' stripes may have landed: unverifiable
            extent = phase_extent(phase, scenario.num_ranks)
            if extent is not None:
                oracle.mask(*extent)
        else:
            for rank in range(scenario.num_ranks):
                oracle.apply_pairs(
                    phase_write_pairs(phase, rank, scenario.num_ranks))
    return oracle


# ----------------------------------------------------------------------
# the checkers
# ----------------------------------------------------------------------
def check_no_hang(ctx: RunContext) -> List[str]:
    anomalies = []
    if ctx.deadlocked:
        anomalies.append(
            f"no_hang: simulation deadlocked after {ctx.events_used} events "
            "(event queue drained with ranks still waiting)")
    if ctx.budget_exceeded:
        anomalies.append(
            f"no_hang: run exceeded its event budget "
            f"({ctx.events_used} > {ctx.event_budget}; livelock?)")
    return anomalies


def check_clean_fault(ctx: RunContext) -> List[str]:
    if not ctx.finished:
        return []
    anomalies = list(ctx.execution_anomalies)
    scenario = ctx.scenario
    for index, phase in enumerate(scenario.phases):
        if index >= len(ctx.phase_outcomes):
            continue
        outcomes = ctx.phase_outcomes[index]
        death = death_injector_for_phase(ctx.injectors, index)
        if death is not None and death.fired:
            doomed = death.spec.params["rank"]
            if outcomes[doomed] != "StorageError":
                anomalies.append(
                    f"clean_fault: phase {index} doomed rank {doomed} saw "
                    f"{outcomes[doomed]!r}, not the injected StorageError")
            survivors_ok = [rank for rank, outcome in enumerate(outcomes)
                            if outcome == "ok"]
            if survivors_ok:
                anomalies.append(
                    f"clean_fault: phase {index} ranks {survivors_ok} "
                    "completed despite the injected death (failure must "
                    "surface on every rank)")
            if index + 1 < len(ctx.phase_outcomes):
                probe = ctx.phase_outcomes[index + 1]
                failed = [rank for rank, outcome in enumerate(probe)
                          if outcome != "ok"]
                if failed:
                    anomalies.append(
                        f"clean_fault: post-fault probe phase {index + 1} "
                        f"failed on ranks {failed} (group made no progress)")
        else:
            failed = [(rank, outcome)
                      for rank, outcome in enumerate(outcomes)
                      if outcome != "ok"]
            if failed:
                anomalies.append(
                    f"clean_fault: phase {index} ({phase.kind}) failed "
                    f"without an injected fault: {failed}")
    for injector in ctx.injectors:
        for error in getattr(injector, "errors", []):
            anomalies.append(
                f"clean_fault: cache-thrash adversary error: {error}")
    return anomalies


def check_byte_identity(ctx: RunContext) -> List[str]:
    if not ctx.finished:
        return []
    scenario = ctx.scenario
    oracle = MaskedOracle(scenario.file_size)
    anomalies: List[str] = []
    for index, phase in enumerate(scenario.phases):
        if index >= len(ctx.phase_outcomes):
            break
        outcomes = ctx.phase_outcomes[index]
        death = death_injector_for_phase(ctx.injectors, index)
        died = death is not None and death.fired
        if phase.is_write:
            sub = RunContext(scenario=scenario, path=ctx.path,
                             injectors=ctx.injectors,
                             phase_outcomes=ctx.phase_outcomes[:index + 1],
                             phase_versions=ctx.phase_versions[:index + 1])
            oracle = replay_oracle(sub)
            continue
        if died:
            continue  # every rank raised; nothing to compare
        for rank in range(scenario.num_ranks):
            if outcomes[rank] != "ok":
                continue  # clean_fault reports the failure itself
            data = ctx.phase_reads[index][rank]
            if data is None:
                continue
            regions = phase_read_regions(phase, rank, scenario.num_ranks)
            expected_len = sum(size for _offset, size in regions)
            if len(data) != expected_len:
                anomalies.append(
                    f"byte_identity: phase {index} rank {rank} read "
                    f"{len(data)} bytes, expected {expected_len}")
                continue
            for offset, length in oracle.region_mismatches(regions, data):
                anomalies.append(
                    f"byte_identity: phase {index} ({phase.kind}) rank "
                    f"{rank} diverges from the serial oracle at offset "
                    f"{offset} ({length} bytes)")
    if ctx.final_reads:
        for offset, length in oracle.mismatches(ctx.final_reads[0]):
            anomalies.append(
                f"byte_identity: final contents diverge from the serial "
                f"oracle at offset {offset} ({length} bytes)")
    return anomalies


def check_version_monotonicity(ctx: RunContext) -> List[str]:
    if not ctx.finished or ctx.deployment is None:
        return []
    manager = ctx.deployment.version_manager.manager
    anomalies = []
    pending = manager.pending_versions(ctx.path)
    if pending:
        anomalies.append(
            f"version_monotonicity: versions {pending} still pending after "
            "the run (publication stalled)")
    latest = manager.latest_published(ctx.path)
    if latest != manager.tickets_assigned:
        anomalies.append(
            f"version_monotonicity: latest published {latest} != tickets "
            f"assigned {manager.tickets_assigned} (gap in the version "
            "chain)")
    expected_aborts = ctx.expected_aborts()
    if manager.tickets_aborted != expected_aborts:
        anomalies.append(
            f"version_monotonicity: {manager.tickets_aborted} tickets "
            f"aborted, expected {expected_aborts} (one per fired death "
            "injector on the write path)")
    return anomalies


def check_stats_partition(ctx: RunContext) -> List[str]:
    if not ctx.finished or ctx.cluster is None:
        return []
    registry = ctx.cluster.obs.registry
    collect_all(registry,
                cluster=ctx.cluster,
                deployment=ctx.deployment,
                clients=ctx.all_clients,
                drivers=list(ctx.drivers.values()),
                comms=[ctx.comm] if ctx.comm is not None else (),
                complete_clients=True)
    return [f"stats_partition: {problem}"
            for problem in registry.check_identities()]


def check_coop_tier(ctx: RunContext) -> List[str]:
    """Cooperative-tier conservation, stronger (per-client) than the
    registry identities.

    With the tier never enrolled every peer counter must be zero.  With it
    on, the peer services' served hits must equal the clients' admitted
    peer hits plus their watermark rejections (every answer accounted once
    on both sides of the wire), and each client's private-tier lookups
    must partition exactly into private hits + shared hits + peer hits +
    fetches — a killed peer daemon or a storm of coalesced probers may
    cost extra RPCs, never a lost or double-counted lookup.
    """
    if not ctx.finished or ctx.deployment is None:
        return []
    anomalies: List[str] = []
    clients = list(ctx.all_clients)
    client_hits = sum(client.peer_cache_hits for client in clients)
    rejections = sum(client.peer_rejections for client in clients)
    probe_rpcs = sum(client.peer_probe_rpcs for client in clients)
    directory = ctx.deployment.coop_directory
    if directory is None:
        if client_hits or rejections or probe_rpcs:
            anomalies.append(
                "coop_tier: peer counters nonzero without a cooperative "
                f"directory (hits={client_hits} rejections={rejections} "
                f"probes={probe_rpcs})")
        return anomalies
    stats = ctx.deployment.coop_stats()
    if stats["served_hits"] != client_hits + rejections:
        anomalies.append(
            f"coop_tier: peers served {stats['served_hits']} hits but "
            f"clients admitted {client_hits} + rejected {rejections}")
    for client in clients:
        cache = client.metadata_cache
        if cache is None:
            continue
        parts = (cache.stats.hits + client.shared_cache_hits
                 + client.peer_cache_hits + client.metadata_lookup_fetches)
        if cache.stats.lookups != parts:
            anomalies.append(
                f"coop_tier: client {client.name} lookup partition broken: "
                f"{cache.stats.lookups} lookups != {cache.stats.hits} "
                f"private + {client.shared_cache_hits} shared + "
                f"{client.peer_cache_hits} peer + "
                f"{client.metadata_lookup_fetches} fetched")
    return anomalies


def check_snapshot_stability(ctx: RunContext) -> List[str]:
    if not ctx.finished or len(ctx.final_reads) < 2:
        return []
    first, second = ctx.final_reads[0], ctx.final_reads[1]
    if first != second:
        diverge = next(i for i in range(min(len(first), len(second)) + 1)
                       if i >= len(first) or i >= len(second)
                       or first[i] != second[i])
        return [f"snapshot_stability: two fresh read-backs of the same "
                f"snapshot diverge at offset {diverge}"]
    return []


CHECKERS = {
    "no_hang": check_no_hang,
    "clean_fault": check_clean_fault,
    "byte_identity": check_byte_identity,
    "version_monotonicity": check_version_monotonicity,
    "stats_partition": check_stats_partition,
    "coop_tier": check_coop_tier,
    "snapshot_stability": check_snapshot_stability,
}


def run_checkers(ctx: RunContext) -> Dict[str, List[str]]:
    """Every checker's anomalies, keyed by checker name (all keys present)."""
    return {name: CHECKERS[name](ctx) for name in CHECKER_NAMES}
