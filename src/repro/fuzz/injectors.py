"""Hostility injectors: runtime sabotage armed per phase, proven live.

Each injector mirrors a sabotage idiom from the fault-injection suites:

* :class:`AggregatorDeath` — one-shot ``_store_nodes`` failure on the
  doomed rank's commit engine: the stripe commit dies *after* its version
  ticket is assigned and *before* its metadata completes (the exact torn-
  snapshot window).  The collective must fail on every rank, the ticket
  must abort, and the phase's union extent becomes oracle-uncertain
  (surviving aggregators' stripes may have published).
* :class:`ResolverDeath` — one-shot ``_vectored_read`` failure on the
  doomed rank during a collective read: every rank must raise instead of
  hanging, and no version-manager state may change (reads own no tickets).
* :class:`Straggler` — no patch at all: the runner makes the doomed rank
  sleep past its ``coalesce_max_delay`` after queueing, so the flush
  watchdog publishes its writes out of rank order.  Only armed on
  disjoint (checkpoint) phases, where bytes are flush-order-independent;
  liveness is the watchdog's ``delay_flushes`` counter.
* :class:`CacheThrash` — a background adversary client with a tiny
  metadata cache issuing random reads (fuzz-scope RNG) throughout the
  job, churning the shared cache tier under the ranks' feet.
* :class:`HotSpot` — generation-time: the target phase's workload was
  confined to a narrow window, concentrating cross-rank overlap.  Nothing
  to arm; live by construction.
* :class:`ProviderDeath` — one cooperative peer-cache daemon dies (pool
  dropped, probes answered "unavailable") at the start of a peer-miss
  storm and never comes back: the tier must degrade to the authoritative
  fallback with zero byte divergence.

A patch that never fires (e.g. the doomed aggregator's stripe was empty)
is healed at phase end and reported as *dormant*, never as an anomaly —
and never leaks into later phases.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import StorageError
from repro.fuzz.scenario import InjectorSpec


class Injector:
    """Base runtime injector: arm/disarm around the target phase."""

    #: whether a *fired* injector makes its phase fail on every rank
    expects_phase_failure = False
    #: whether a fired instance aborts exactly one version ticket
    aborts_ticket = False
    #: whether the oracle must mask the faulted phase's union extent
    masks_phase = False

    def __init__(self, spec: InjectorSpec):
        self.spec = spec
        self.kind = spec.kind
        self.fired = False

    @property
    def phase(self) -> int:
        return self.spec.phase

    def arm(self, rank: int, driver) -> None:
        """Install sabotage on one rank at the start of the target phase."""

    def disarm(self, rank: int, driver) -> None:
        """Heal any dormant patch at the end of the target phase."""

    def observe(self, drivers) -> None:
        """Post-run liveness from stats (for patchless injectors)."""


class AggregatorDeath(Injector):
    expects_phase_failure = True
    aborts_ticket = True
    masks_phase = True

    def arm(self, rank: int, driver) -> None:
        if rank != self.spec.params["rank"]:
            return
        engine = driver.client.writepath
        injector = self

        def broken_store_nodes(blob, nodes, trace_parent=None):
            # one-shot: deleting the instance attribute restores the class
            # method, so the "node" recovers after killing this commit
            del engine._store_nodes
            injector.fired = True
            raise StorageError("fuzz: aggregator died mid-commit")
            yield  # pragma: no cover - generator shape

        engine._store_nodes = broken_store_nodes

    def disarm(self, rank: int, driver) -> None:
        if rank != self.spec.params["rank"]:
            return
        engine = driver.client.writepath
        if "_store_nodes" in engine.__dict__:  # dormant: stripe never committed
            del engine.__dict__["_store_nodes"]


class ResolverDeath(Injector):
    expects_phase_failure = True

    def arm(self, rank: int, driver) -> None:
        if rank != self.spec.params["rank"]:
            return
        client = driver.client
        injector = self

        def dying_read(blob_id, vector, version=None, trace=None,
                       holes=None):
            del client._vectored_read
            injector.fired = True
            raise StorageError("fuzz: resolver died mid-fetch")
            yield  # pragma: no cover - generator shape

        client._vectored_read = dying_read

    def disarm(self, rank: int, driver) -> None:
        if rank != self.spec.params["rank"]:
            return
        client = driver.client
        if "_vectored_read" in client.__dict__:  # dormant: stripe was empty
            del client.__dict__["_vectored_read"]


class Straggler(Injector):
    """Patchless: the runner sleeps the doomed rank; liveness via stats."""

    @property
    def rank(self) -> int:
        return self.spec.params["rank"]

    @property
    def delay(self) -> float:
        return self.spec.params["delay"]

    @property
    def max_delay(self) -> float:
        return self.spec.params["max_delay"]

    def observe(self, drivers) -> None:
        driver = drivers.get(self.rank)
        if driver is not None and driver.client.coalescer is not None \
                and driver.client.coalescer.stats.delay_flushes >= 1:
            self.fired = True


class CacheThrash(Injector):
    """Marker for the runner's background adversary process."""

    def __init__(self, spec: InjectorSpec):
        super().__init__(spec)
        self.reads_done = 0
        self.errors: List[str] = []

    def note_read(self) -> None:
        self.reads_done += 1
        self.fired = True


class HotSpot(Injector):
    """Generation-time hostility: live by construction."""

    def __init__(self, spec: InjectorSpec):
        super().__init__(spec)
        self.fired = True


class ProviderDeath(Injector):
    """Kill one compute node's cooperative peer-cache daemon.

    Armed once by rank 0 at the start of the target (peer-miss-storm)
    phase: the victim service answers every later probe "unavailable" and
    its pool's memory dies with it.  Deliberately never healed, and
    ``expects_phase_failure`` stays False — losing a peer must cost only
    RPCs (probers fall back to the authoritative shards), never bytes, so
    the phase and every later read must still succeed byte-identically.
    """

    def arm(self, rank: int, driver) -> None:
        if rank != 0 or self.fired:
            return
        directory = driver.client.deployment.coop_directory
        if directory is None:
            return  # tier never enrolled (coop sampled off): dormant
        participants = directory.participants()
        if not participants:
            return
        victim = participants[self.spec.params["victim"] % len(participants)]
        service = directory.services[victim]
        if service.alive:
            service.kill()
            self.fired = True


_KINDS = {
    "aggregator_death": AggregatorDeath,
    "resolver_death": ResolverDeath,
    "straggler": Straggler,
    "cache_thrash": CacheThrash,
    "hot_spot": HotSpot,
    "provider_death": ProviderDeath,
}


def build_injector(spec: InjectorSpec) -> Injector:
    return _KINDS[spec.kind](spec)


def build_injectors(specs) -> List[Injector]:
    return [build_injector(spec) for spec in specs]


def death_injector_for_phase(injectors, phase_index: int
                             ) -> Optional[Injector]:
    """The (single) phase-failure injector targeting ``phase_index``."""
    for injector in injectors:
        if injector.expects_phase_failure and injector.phase == phase_index:
            return injector
    return None
