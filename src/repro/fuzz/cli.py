"""``python -m repro.fuzz`` — the scenario fuzzer's command line.

Sweep mode (default): execute ``--max-runs`` scenarios at consecutive
seeds starting from ``--seed-base``, append one line per run to
``<out>/runs.ndjson``, dump a triage bundle per flagged run, and exit
non-zero if anything was flagged.

Replay mode (``--replay SEED``): regenerate that seed's scenario, execute
it, print its runs.ndjson line to stdout, and — when the output directory
already holds a line for the seed — verify the fresh line reproduces the
recorded one byte-identically (exit non-zero on mismatch or anomaly).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional, Sequence

from repro.fuzz.generator import generate_scenario
from repro.fuzz.report import append_line, dump_flagged, recorded_line, \
    run_line
from repro.fuzz.runner import execute_scenario


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz",
        description="Randomized scenario fuzzing of the versioned atomic "
                    "MPI-I/O stack with deterministic seed replay.")
    parser.add_argument("--max-runs", type=int, default=100,
                        help="scenarios to execute (default: 100)")
    parser.add_argument("--seed-base", type=int, default=0,
                        help="first seed; run i uses seed-base + i "
                             "(default: 0)")
    parser.add_argument("--replay", type=int, default=None, metavar="SEED",
                        help="re-execute one seed and verify it reproduces "
                             "its recorded runs.ndjson line byte-identically")
    parser.add_argument("--out", default="fuzzer_output",
                        help="output directory (default: fuzzer_output)")
    parser.add_argument("--max-events", type=int, default=None,
                        help="override the per-run event budget (the "
                             "no-hang bound)")
    parser.add_argument("--no-artifacts", action="store_true",
                        help="skip flagged-run triage bundles (line output "
                             "only)")
    return parser


def replay(args: argparse.Namespace) -> int:
    scenario = generate_scenario(args.replay)
    result = execute_scenario(scenario, max_events=args.max_events)
    line = run_line(result)
    print(line)
    recorded = recorded_line(args.out, args.replay)
    status = 0
    if recorded:
        if recorded == line:
            print(f"replay of seed {args.replay} reproduces its recorded "
                  "line byte-identically", file=sys.stderr)
        else:
            print(f"REPLAY MISMATCH for seed {args.replay}:\n"
                  f"  recorded: {recorded}\n  replayed: {line}",
                  file=sys.stderr)
            status = 1
    if result.flagged:
        for anomaly in result.all_anomalies():
            print(f"  {anomaly}", file=sys.stderr)
        if not args.no_artifacts:
            run_dir = dump_flagged(result, args.out)
            print(f"triage bundle: {run_dir}", file=sys.stderr)
        status = 1
    return status


def sweep(args: argparse.Namespace) -> int:
    flagged = 0
    started = time.monotonic()  # stderr progress only; never in the line
    for index in range(args.max_runs):
        seed = args.seed_base + index
        scenario = generate_scenario(seed)
        result = execute_scenario(scenario, max_events=args.max_events)
        line = run_line(result)
        append_line(args.out, line)
        if result.flagged:
            flagged += 1
            print(f"FLAGGED seed {seed}: "
                  f"{'; '.join(result.all_anomalies()[:3])}",
                  file=sys.stderr)
            if not args.no_artifacts:
                dump_flagged(result, args.out)
        if (index + 1) % 25 == 0 or index + 1 == args.max_runs:
            elapsed = time.monotonic() - started
            print(f"[{index + 1}/{args.max_runs}] {flagged} flagged, "
                  f"{elapsed:.1f}s", file=sys.stderr)
    print(f"done: {args.max_runs} runs, {flagged} flagged, "
          f"output in {args.out}/runs.ndjson", file=sys.stderr)
    return 1 if flagged else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.replay is not None:
        return replay(args)
    return sweep(args)
