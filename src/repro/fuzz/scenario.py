"""Scenario descriptions: the fuzzer's JSON-serializable run blueprints.

A :class:`Scenario` is a pure value derived entirely from one seed: the
cluster shape, the deployment shape, an ordered list of I/O phases and the
injected hostility.  Everything in it is JSON-serializable — workload
payloads are fill-byte runs, so a phase stores parameters, never bytes —
which is what lets the fuzzer dump a flagged run's exact blueprint next to
its seed and rebuild it byte-identically on replay.

Workload families (``PhaseSpec.workload["family"]``):

* ``"random"``     — :class:`~repro.workloads.random_vectored.
  RandomVectoredWorkload`: disjoint within a rank, overlapping across
  ranks, optional hot-spot window;
* ``"checkpoint"`` — :class:`~repro.workloads.collective_checkpoint.
  CollectiveCheckpointWorkload` (one round): interleaved disjoint blocks,
  the pattern whose bytes are order-independent (required under straggler
  injection, where flush order is perturbed);
* ``"overlap"``    — :class:`~repro.workloads.overlap_stress.
  OverlapStressWorkload`: deliberately overlapping neighbour regions, the
  paper's Experiment-1 hostility;
* ``"storm"``      — :class:`~repro.workloads.shared_scan.
  SharedScanWorkload` (identical pattern, one round): every rank reads
  the *same* extent in the same disjoint slices — maximal cross-rank
  metadata overlap, the cooperative peer tier's worst concurrency case
  (used by ``peer_miss_storm`` phases).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Tuple

from repro.errors import BenchmarkError
from repro.workloads.collective_checkpoint import CollectiveCheckpointWorkload
from repro.workloads.overlap_stress import OverlapStressWorkload
from repro.workloads.random_vectored import RandomVectoredWorkload
from repro.workloads.shared_scan import SharedScanWorkload

#: phase kinds the runner executes (``peer_miss_storm`` is an independent
#: read with a storm-family workload: every rank misses on the same keys
#: at once, hammering the cooperative tier's probe and coalescing paths)
PHASE_KINDS = ("independent_write", "collective_write", "atomic_write",
               "collective_read", "independent_read", "peer_miss_storm")
WRITE_KINDS = ("independent_write", "collective_write", "atomic_write")
READ_KINDS = ("collective_read", "independent_read", "peer_miss_storm")

#: injector kinds (see :mod:`repro.fuzz.injectors`)
INJECTOR_KINDS = ("aggregator_death", "resolver_death", "straggler",
                  "cache_thrash", "hot_spot", "provider_death")


@dataclass(frozen=True)
class PhaseSpec:
    """One globally-ordered I/O phase of a scenario."""

    kind: str
    #: workload family + parameters (JSON-serializable)
    workload: Mapping

    def __post_init__(self):
        if self.kind not in PHASE_KINDS:
            raise BenchmarkError(f"unknown phase kind {self.kind!r}")

    @property
    def is_write(self) -> bool:
        return self.kind in WRITE_KINDS


@dataclass(frozen=True)
class InjectorSpec:
    """One piece of injected hostility, targeting one phase."""

    kind: str
    #: index of the phase the injector arms during (cache_thrash runs for
    #: the whole job and uses 0 by convention)
    phase: int
    params: Mapping = field(default_factory=dict)

    def __post_init__(self):
        if self.kind not in INJECTOR_KINDS:
            raise BenchmarkError(f"unknown injector kind {self.kind!r}")


@dataclass(frozen=True)
class Scenario:
    """Everything one fuzzer run needs, derived from one seed."""

    seed: int
    num_ranks: int
    ranks_per_node: int
    num_aggregators: int
    file_size: int
    chunk_size: int
    num_providers: int
    num_metadata_providers: int
    #: :class:`~repro.cluster.config.ClusterConfig` field overrides
    cluster: Mapping
    phases: Tuple[PhaseSpec, ...]
    injectors: Tuple[InjectorSpec, ...]

    # ------------------------------------------------------------------
    # JSON round-trip
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        return {
            "seed": self.seed,
            "num_ranks": self.num_ranks,
            "ranks_per_node": self.ranks_per_node,
            "num_aggregators": self.num_aggregators,
            "file_size": self.file_size,
            "chunk_size": self.chunk_size,
            "num_providers": self.num_providers,
            "num_metadata_providers": self.num_metadata_providers,
            "cluster": dict(self.cluster),
            "phases": [{"kind": phase.kind,
                        "workload": dict(phase.workload)}
                       for phase in self.phases],
            "injectors": [{"kind": injector.kind, "phase": injector.phase,
                           "params": dict(injector.params)}
                          for injector in self.injectors],
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "Scenario":
        return cls(
            seed=data["seed"],
            num_ranks=data["num_ranks"],
            ranks_per_node=data["ranks_per_node"],
            num_aggregators=data["num_aggregators"],
            file_size=data["file_size"],
            chunk_size=data["chunk_size"],
            num_providers=data["num_providers"],
            num_metadata_providers=data["num_metadata_providers"],
            cluster=dict(data["cluster"]),
            phases=tuple(PhaseSpec(kind=entry["kind"],
                                   workload=dict(entry["workload"]))
                         for entry in data["phases"]),
            injectors=tuple(InjectorSpec(kind=entry["kind"],
                                         phase=entry["phase"],
                                         params=dict(entry["params"]))
                            for entry in data["injectors"]),
        )

    def canonical_json(self) -> str:
        """Compact, key-sorted JSON — byte-stable for a given scenario."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))


# ----------------------------------------------------------------------
# workload materialization (pure functions of the spec)
# ----------------------------------------------------------------------
def build_workload(workload: Mapping, num_ranks: int):
    """Construct the workload object a phase's parameters describe."""
    family = workload["family"]
    if family == "random":
        window = workload.get("window")
        return RandomVectoredWorkload(
            num_ranks=num_ranks,
            file_size=workload["file_size"],
            seed=workload["seed"],
            max_regions=workload.get("max_regions", 4),
            max_region_size=workload.get("max_region_size", 1500),
            empty_rank_chance=workload.get("empty_rank_chance", 0.2),
            window=tuple(window) if window else None)
    if family == "checkpoint":
        return CollectiveCheckpointWorkload(
            num_ranks=num_ranks, rounds=1,
            blocks_per_rank=workload["blocks_per_rank"],
            block_size=workload["block_size"])
    if family == "overlap":
        return OverlapStressWorkload(
            num_clients=num_ranks,
            regions_per_client=workload["regions_per_client"],
            region_size=workload["region_size"],
            overlap_fraction=workload["overlap_fraction"])
    if family == "storm":
        return SharedScanWorkload(
            num_clients=max(num_ranks, 1), rounds=1,
            blocks_per_round=workload["pieces"],
            block_size=workload["piece_size"],
            pattern="identical")
    raise BenchmarkError(f"unknown workload family {family!r}")


def workload_file_size(workload: Mapping, num_ranks: int) -> int:
    """Bytes of file extent the workload touches (for sizing the blob)."""
    family = workload["family"]
    if family == "random":
        return workload["file_size"]
    return build_workload(workload, num_ranks).file_size


def phase_write_pairs(phase: PhaseSpec, rank: int,
                      num_ranks: int) -> List[Tuple[int, bytes]]:
    """One rank's ``(offset, payload)`` vector for a write phase."""
    obj = build_workload(phase.workload, num_ranks)
    if isinstance(obj, RandomVectoredWorkload):
        return obj.write_pairs(rank)
    if isinstance(obj, CollectiveCheckpointWorkload):
        return obj.write_pairs(rank, 0)
    return obj.client_pairs(rank)


def phase_read_regions(phase: PhaseSpec, rank: int,
                       num_ranks: int) -> List[Tuple[int, int]]:
    """One rank's ``(offset, size)`` regions for a read phase."""
    obj = build_workload(phase.workload, num_ranks)
    if isinstance(obj, RandomVectoredWorkload):
        halo = phase.workload.get("halo", 0)
        if halo:
            return obj.halo_read_regions(rank, halo)
        return obj.read_regions(rank)
    if isinstance(obj, CollectiveCheckpointWorkload):
        return [(offset, len(payload))
                for offset, payload in obj.write_pairs(rank, 0)]
    if isinstance(obj, SharedScanWorkload):
        # storm: the identical full extent, sliced — for every rank
        return [(index * obj.block_size, obj.block_size)
                for index in range(obj.blocks_per_round)]
    return [(region.offset, region.size)
            for region in obj.client_regions(rank)]


def phase_extent(phase: PhaseSpec, num_ranks: int):
    """``(lo, hi)`` union extent of a write phase; ``None`` if all empty."""
    spans = []
    for rank in range(num_ranks):
        for offset, payload in phase_write_pairs(phase, rank, num_ranks):
            spans.append((offset, offset + len(payload)))
    if not spans:
        return None
    return min(lo for lo, _ in spans), max(hi for _, hi in spans)
