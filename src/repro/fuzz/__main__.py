"""Entry point: ``python -m repro.fuzz``."""

from repro.fuzz.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
