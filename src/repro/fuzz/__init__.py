"""Scenario fuzzer: randomized cluster/workload/fault exploration.

The permanent hardening engine over the whole stack: a seed-derived
generator samples cluster shapes, phase mixes and injected hostility
(:mod:`repro.fuzz.generator`), a runner executes each scenario as one
simulated MPI job (:mod:`repro.fuzz.runner`), and a bank of invariant
checkers judges every run against the paper's contracts
(:mod:`repro.fuzz.invariants`) — byte identity vs the serial oracle,
version-ticket monotonicity, metrics partition identities, no-hang and
clean failure containment.  Results land one line per run in
``runs.ndjson`` (:mod:`repro.fuzz.report`); any seed replays
byte-identically because every random choice flows through the ``"fuzz"``
RNG scope, never wall-clock (:mod:`repro.simengine.rand`).

CLI: ``python -m repro.fuzz --max-runs N [--seed-base S] [--out DIR]`` /
``--replay SEED`` (:mod:`repro.fuzz.cli`).
"""

from repro.fuzz.generator import generate_scenario
from repro.fuzz.invariants import CHECKER_NAMES, RunContext, run_checkers
from repro.fuzz.oracle import MaskedOracle, random_pattern, serial_oracle
from repro.fuzz.runner import RunResult, execute_scenario
from repro.fuzz.scenario import InjectorSpec, PhaseSpec, Scenario

__all__ = [
    "CHECKER_NAMES",
    "InjectorSpec",
    "MaskedOracle",
    "PhaseSpec",
    "RunContext",
    "RunResult",
    "Scenario",
    "execute_scenario",
    "generate_scenario",
    "random_pattern",
    "run_checkers",
    "serial_oracle",
]
