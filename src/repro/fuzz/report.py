"""Run reporting: ``runs.ndjson`` lines and flagged-run artifact dumps.

One line per run, appended to ``<out>/runs.ndjson``: compact, key-sorted
JSON with **no wall-clock content** — every field derives from the seed
and the simulation, so replaying a seed reproduces its line byte-for-byte
(the replay contract ``--replay`` enforces).  Wall-clock progress goes to
stderr only.

A flagged run additionally gets ``<out>/flagged/seed_<seed>/`` holding the
full scenario blueprint, the resolved cluster config, the anomaly list, a
Chrome trace from a traced re-execution (tracing is behaviour-neutral, so
the trace shows exactly the flagged timeline), the re-execution's
flight-recorder ring (``flight.json``) and its critical-path layer
breakdown (``critpath.json``) — everything triage needs to replay and
inspect the failure.
"""

from __future__ import annotations

import json
import os
from typing import Dict

from repro.cluster.config import ClusterConfig
from repro.fuzz.runner import QUICK_BASE, RunResult, execute_scenario

#: ndjson lines are capped to keep sweeps greppable; anomalies beyond this
#: stay in the flagged dump
MAX_LINE_ANOMALIES = 6


def run_line(result: RunResult) -> str:
    """The deterministic one-line JSON record of a run."""
    scenario = result.scenario
    anomalies = result.all_anomalies()
    record = {
        "seed": scenario.seed,
        "status": "flagged" if result.flagged else "ok",
        "num_ranks": scenario.num_ranks,
        "num_aggregators": scenario.num_aggregators,
        "phases": [phase.kind for phase in scenario.phases],
        "injectors": [injector.kind for injector in scenario.injectors],
        "fired": result.fired,
        "dormant": result.dormant,
        "anomalies": anomalies[:MAX_LINE_ANOMALIES],
        "anomaly_count": len(anomalies),
        "read_digest": result.read_digest,
        "latest_version": result.latest_version,
        "processed_events": result.processed_events,
        "sim_elapsed": result.sim_elapsed,
    }
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def resolved_config(result: RunResult) -> Dict:
    """The full ClusterConfig the run executed under, as one flat dict."""
    overrides = dict(QUICK_BASE)
    overrides.update(result.scenario.cluster)
    return ClusterConfig(**overrides).as_dict()


def dump_flagged(result: RunResult, out_dir: str) -> str:
    """Write the triage bundle of a flagged run; returns its directory."""
    run_dir = os.path.join(out_dir, "flagged",
                           f"seed_{result.scenario.seed}")
    os.makedirs(run_dir, exist_ok=True)
    with open(os.path.join(run_dir, "scenario.json"), "w") as handle:
        handle.write(result.scenario.canonical_json())
    with open(os.path.join(run_dir, "config.json"), "w") as handle:
        json.dump(resolved_config(result), handle, indent=2, sort_keys=True)
    with open(os.path.join(run_dir, "anomalies.json"), "w") as handle:
        json.dump({"anomalies": result.anomalies,
                   "fired": result.fired,
                   "dormant": result.dormant},
                  handle, indent=2, sort_keys=True)
    # traced re-execution: tracing never changes simulated behaviour, so
    # the trace, flight ring and critical-path breakdown show the flagged
    # run's exact timeline
    try:
        execute_scenario(result.scenario, tracing=True,
                         trace_path=os.path.join(run_dir, "trace.json"),
                         flight_path=os.path.join(run_dir, "flight.json"),
                         critpath_path=os.path.join(run_dir,
                                                    "critpath.json"))
    except Exception as exc:
        # a pathological flagged run (deadlock, partial spans) must not
        # lose its bundle over a failed analysis pass
        with open(os.path.join(run_dir, "analysis_error.txt"),
                  "w") as handle:
            handle.write(f"{type(exc).__name__}: {exc}\n")
    return run_dir


def append_line(out_dir: str, line: str) -> None:
    os.makedirs(out_dir, exist_ok=True)
    with open(os.path.join(out_dir, "runs.ndjson"), "a") as handle:
        handle.write(line + "\n")


def recorded_line(out_dir: str, seed: int) -> str:
    """The last runs.ndjson line recorded for ``seed`` (or ``""``)."""
    path = os.path.join(out_dir, "runs.ndjson")
    if not os.path.exists(path):
        return ""
    found = ""
    with open(path) as handle:
        for raw in handle:
            raw = raw.strip()
            if not raw:
                continue
            try:
                if json.loads(raw).get("seed") == seed:
                    found = raw
            except json.JSONDecodeError:
                continue
    return found
