"""Seed-derived scenario generation.

Every random choice flows through the ``"fuzz"`` scope of one
:class:`~repro.simengine.rand.DeterministicRNG` rooted at the run seed —
never wall-clock, never a shared global.  The scope has three streams with
a fixed consumption order (``cluster`` → ``phases`` → ``hostility``), so a
seed maps to exactly one scenario forever, and because fuzz streams are
SHA-derived like every other scope, generating scenarios can never perturb
the workload or network streams of the simulations they describe.

Hostility is sampled *after* the phases so its preconditions can be
checked against what actually exists (an aggregator death needs a
collective write with at least two aggregators; a straggler needs a
disjoint independent-write phase whose bytes are flush-order-independent).
When a death injector is placed, a disjoint probe phase is appended so the
run also proves the group makes progress after the failure.
"""

from __future__ import annotations

from typing import List

from repro.mpiio.adio.collective import aggregator_ranks
from repro.simengine.rand import SCOPE_FUZZ, DeterministicRNG
from repro.fuzz.scenario import (
    InjectorSpec,
    PhaseSpec,
    Scenario,
    build_workload,
    workload_file_size,
)

#: bounds keeping one run small enough for 500-run sweeps
MAX_RANKS = 5
MAX_PHASES = 3


def _choice(stream, items):
    return items[int(stream.integers(0, len(items)))]


def _chance(stream, probability: float) -> bool:
    return float(stream.uniform(0.0, 1.0)) < probability


def _sample_cluster(stream) -> dict:
    """ClusterConfig overrides on top of the QUICK base profile."""
    overrides = {
        "engine": "legacy" if _chance(stream, 0.15) else "fast",
        "scheduler": _choice(stream, [None, "calendar", "heapq"]),
        "network_model": "queued" if _chance(stream, 0.3) else "bottleneck",
        "tracing": _chance(stream, 0.15),
    }
    if overrides["network_model"] == "queued":
        overrides["nodes_per_switch"] = int(stream.integers(2, 5))
        if _chance(stream, 0.5):
            overrides["network_jitter"] = round(
                float(stream.uniform(0.01, 0.2)), 4)
    if _chance(stream, 0.4):
        overrides["shared_metadata_cache"] = True
        overrides["shared_cache_capacity"] = _choice(
            stream, [None, 8, 16, 32, 64])
        overrides["shared_cache_policy"] = _choice(
            stream, ["lru", "slru", "2q", "level:2"])
    if _chance(stream, 0.4):
        overrides["metadata_cache_capacity"] = int(stream.integers(4, 65))
    if _chance(stream, 0.25):
        overrides["metadata_prefetch"] = True
    # cooperative cross-node tier (rides on the shared tier).  Appended at
    # the END of this stream: pre-cooperative seeds replay unchanged
    if overrides.get("shared_metadata_cache") and _chance(stream, 0.5):
        overrides["cooperative_cache"] = True
        overrides["coop_provider_fraction"] = _choice(
            stream, [0.25, 0.5, 0.75])
    return overrides


def _sample_workload(stream, family: str, num_ranks: int,
                     pattern_seed: int) -> dict:
    if family == "random":
        file_size = int(stream.integers(8, 33)) * 1024
        max_region_size = int(stream.integers(200, 1501))
        return {"family": "random", "seed": pattern_seed,
                "file_size": file_size,
                "max_regions": int(stream.integers(1, 5)),
                "max_region_size": max_region_size,
                "empty_rank_chance": round(
                    float(stream.uniform(0.0, 0.3)), 3),
                "window": None}
    if family == "checkpoint":
        return {"family": "checkpoint",
                "blocks_per_rank": int(stream.integers(2, 5)),
                "block_size": int(_choice(stream, [256, 512, 1024]))}
    return {"family": "overlap",
            "regions_per_client": int(stream.integers(2, 5)),
            "region_size": int(stream.integers(256, 2049)),
            "overlap_fraction": round(float(stream.uniform(0.0, 0.8)), 3)}


def _probe_phase(stream, pattern_seed: int) -> PhaseSpec:
    """A disjoint write phase proving post-fault progress."""
    return PhaseSpec(kind="independent_write",
                     workload=_sample_workload(stream, "checkpoint", 0,
                                               pattern_seed))


def generate_scenario(seed: int) -> Scenario:
    """The one scenario a seed maps to (pure; no global state)."""
    scope = DeterministicRNG(seed).scope(SCOPE_FUZZ)
    cluster_stream = scope.stream("cluster")
    phase_stream = scope.stream("phases")
    fault_stream = scope.stream("hostility")

    num_ranks = int(cluster_stream.integers(2, MAX_RANKS + 1))
    ranks_per_node = 2 if _chance(cluster_stream, 0.3) else 1
    num_aggregators = int(cluster_stream.integers(1, num_ranks + 1))
    chunk_size = int(_choice(cluster_stream, [512, 1024, 2048]))
    num_providers = int(cluster_stream.integers(2, 5))
    num_metadata_providers = int(cluster_stream.integers(1, 4))
    cluster = _sample_cluster(cluster_stream)

    # ------------------------------------------------------------------
    # phases: writes first (reads only make sense over written bytes)
    # ------------------------------------------------------------------
    phases: List[PhaseSpec] = []
    num_phases = int(phase_stream.integers(1, MAX_PHASES + 1))
    for index in range(num_phases):
        pattern_seed = seed * 1009 + index * 101 + num_ranks
        if index == 0 or _chance(phase_stream, 0.6):
            kind = _choice(phase_stream, ["independent_write",
                                          "collective_write",
                                          "atomic_write"])
            family = _choice(phase_stream, ["random", "checkpoint",
                                            "overlap"])
        else:
            kind = _choice(phase_stream, ["collective_read",
                                          "independent_read"])
            family = _choice(phase_stream, ["random", "checkpoint"])
        workload = _sample_workload(phase_stream, family, num_ranks,
                                    pattern_seed)
        if kind in ("collective_read", "independent_read") \
                and family == "random" and _chance(phase_stream, 0.5):
            workload["halo"] = int(phase_stream.integers(16, 129))
        phases.append(PhaseSpec(kind=kind, workload=workload))

    # ------------------------------------------------------------------
    # hostility, constrained by what the phases offer
    # ------------------------------------------------------------------
    injectors: List[InjectorSpec] = []

    # hot spot: confine a random-family write phase to a narrow window
    if _chance(fault_stream, 0.3):
        candidates = [i for i, p in enumerate(phases)
                      if p.is_write and p.workload["family"] == "random"]
        if candidates:
            target = _choice(fault_stream, candidates)
            workload = dict(phases[target].workload)
            span = max(workload["max_region_size"],
                       workload["file_size"] // 8)
            lo = int(fault_stream.integers(
                0, workload["file_size"] - span + 1))
            workload["window"] = [lo, span]
            workload["max_region_size"] = min(
                workload["max_region_size"], span)
            phases[target] = PhaseSpec(kind=phases[target].kind,
                                       workload=workload)
            injectors.append(InjectorSpec(
                kind="hot_spot", phase=target,
                params={"window": workload["window"]}))

    owners = aggregator_ranks(num_ranks, num_aggregators)
    if _chance(fault_stream, 0.35):
        roll = float(fault_stream.uniform(0.0, 1.0))
        if roll < 0.3 and num_aggregators >= 2:
            # aggregator death needs a collective write to die inside
            targets = [i for i, p in enumerate(phases)
                       if p.kind == "collective_write"]
            if targets:
                target = _choice(fault_stream, targets)
                injectors.append(InjectorSpec(
                    kind="aggregator_death", phase=target,
                    params={"rank": owners[-1]}))
                phases.append(_probe_phase(fault_stream,
                                           seed * 1009 + 7919))
        elif roll < 0.55:
            targets = [i for i, p in enumerate(phases)
                       if p.kind == "collective_read"]
            if targets:
                target = _choice(fault_stream, targets)
                injectors.append(InjectorSpec(
                    kind="resolver_death", phase=target,
                    params={"rank": owners[-1]}))
                phases.append(_probe_phase(fault_stream,
                                           seed * 1009 + 7919))
        elif roll < 0.8:
            # straggler: needs a disjoint (checkpoint) independent write
            targets = [i for i, p in enumerate(phases)
                       if p.kind == "independent_write"
                       and p.workload["family"] == "checkpoint"]
            if not targets and _chance(fault_stream, 0.7):
                phases.insert(0, PhaseSpec(
                    kind="independent_write",
                    workload=_sample_workload(fault_stream, "checkpoint",
                                              num_ranks, seed * 1009 + 31)))
                for i, injector in enumerate(injectors):
                    injectors[i] = InjectorSpec(kind=injector.kind,
                                                phase=injector.phase + 1,
                                                params=injector.params)
                targets = [0]
            if targets:
                target = _choice(fault_stream, targets)
                injectors.append(InjectorSpec(
                    kind="straggler", phase=target,
                    params={"rank": int(fault_stream.integers(0, num_ranks)),
                            "max_delay": 0.005,
                            "delay": round(
                                float(fault_stream.uniform(0.03, 0.1)), 4)}))
        else:
            injectors.append(InjectorSpec(
                kind="cache_thrash", phase=0,
                params={"reads": int(fault_stream.integers(4, 13)),
                        "max_size": int(fault_stream.integers(64, 2049))}))

    # cooperative-tier hostility, appended at the END of the hostility
    # stream so pre-cooperative seeds replay unchanged: a peer-miss storm
    # (every rank reads the identical extent at once), optionally with one
    # peer daemon killed under it
    if cluster.get("cooperative_cache") and _chance(fault_stream, 0.6):
        storm_index = len(phases)
        phases.append(PhaseSpec(
            kind="peer_miss_storm",
            workload={"family": "storm",
                      "pieces": int(fault_stream.integers(2, 7)),
                      "piece_size": int(_choice(fault_stream,
                                                [512, 1024, 2048]))}))
        compute_nodes = -(-num_ranks // ranks_per_node)
        if compute_nodes >= 2 and _chance(fault_stream, 0.5):
            injectors.append(InjectorSpec(
                kind="provider_death", phase=storm_index,
                params={"victim": int(fault_stream.integers(0, 16))}))

    # file extent: the union of everything any phase touches
    file_size = max(workload_file_size(phase.workload, num_ranks)
                    for phase in phases)
    file_size = -(-file_size // chunk_size) * chunk_size

    scenario = Scenario(
        seed=seed,
        num_ranks=num_ranks,
        ranks_per_node=ranks_per_node,
        num_aggregators=num_aggregators,
        file_size=file_size,
        chunk_size=chunk_size,
        num_providers=num_providers,
        num_metadata_providers=num_metadata_providers,
        cluster=cluster,
        phases=tuple(phases),
        injectors=tuple(injectors),
    )
    # construction-time validation: every workload must materialize
    for phase in scenario.phases:
        build_workload(phase.workload, num_ranks)
    return scenario
