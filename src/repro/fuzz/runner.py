"""Scenario execution: one fuzz run from blueprint to judged result.

The whole scenario runs as ONE simulated MPI job over one shared file:
phases execute in global order, separated by a sync+barrier boundary (the
MPI ``sync-barrier-sync`` consistency idiom), so every phase's effects are
published before the next phase observes them — any divergence from the
serial oracle is a genuine finding, never a visibility race.

The simulation is driven by a *bounded* manual event loop instead of
``Simulator.run``: a drained queue with unfinished ranks is a deadlock
anomaly and an exhausted event budget is a livelock anomaly — both
reported by the ``no_hang`` checker instead of hanging the fuzzer.

Determinism: the run derives from ``(scenario, seed)`` alone — cluster
seed, workload bytes, adversary reads (fuzz-scope RNG) and the simulated
clock.  Nothing reads the wall clock, so executing the same scenario twice
produces byte-identical results, which is what makes ``--replay`` exact.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.blobseer.deployment import BlobSeerDeployment
from repro.cluster.cluster import Cluster
from repro.cluster.config import ClusterConfig
from repro.errors import SimulationError
from repro.fuzz.injectors import CacheThrash, Straggler, build_injectors
from repro.fuzz.invariants import RunContext, run_checkers
from repro.fuzz.scenario import (
    Scenario,
    phase_read_regions,
    phase_write_pairs,
)
from repro.mpi.datatypes import BYTE, Indexed
from repro.mpi.launcher import launch_mpi_job
from repro.mpiio.adio.versioning import VersioningDriver
from repro.mpiio.file import File
from repro.obs.critpath import dump_report
from repro.obs.export import dump_chrome_trace
from repro.simengine.rand import SCOPE_FUZZ
from repro.vstore.client import VectoredClient

#: the shared file every scenario exercises
PATH = "/fuzz"

#: the QUICK profile of the conformance suites: fast network, fast disks —
#: scenario overrides are applied on top
QUICK_BASE = {"network_latency": 1e-5, "disk_overhead": 1e-4}


@dataclass
class RunResult:
    """One executed, judged scenario."""

    scenario: Scenario
    #: checker name -> anomalies (every checker present, empty when clean)
    anomalies: Dict[str, List[str]]
    #: injector kinds that proved live this run
    fired: List[str] = field(default_factory=list)
    #: injector kinds that were armed but never triggered
    dormant: List[str] = field(default_factory=list)
    read_digest: Optional[str] = None
    latest_version: Optional[int] = None
    processed_events: int = 0
    sim_elapsed: float = 0.0

    @property
    def flagged(self) -> bool:
        return any(self.anomalies.values())

    def all_anomalies(self) -> List[str]:
        return [entry for name in sorted(self.anomalies)
                for entry in self.anomalies[name]]


def event_budget(scenario: Scenario) -> int:
    """A generous per-run event bound (anything above it is a livelock)."""
    budget = 2_000_000 + 600_000 * scenario.num_ranks
    if scenario.cluster.get("engine") == "legacy":
        budget *= 4  # event-per-hop machinery
    return budget


def _rank_view(pairs):
    """Indexed filetype + flat payload for one rank's disjoint regions."""
    blocklengths = [len(payload) for _offset, payload in pairs]
    displacements = [offset for offset, _payload in pairs]
    payload = b"".join(payload for _offset, payload in pairs)
    return Indexed(blocklengths, displacements, base=BYTE), payload


def _read_view(regions):
    blocklengths = [size for _offset, size in regions]
    displacements = [offset for offset, _size in regions]
    return Indexed(blocklengths, displacements, base=BYTE), sum(blocklengths)


def execute_scenario(scenario: Scenario, *, tracing: Optional[bool] = None,
                     trace_path: Optional[str] = None,
                     flight_path: Optional[str] = None,
                     critpath_path: Optional[str] = None,
                     max_events: Optional[int] = None) -> RunResult:
    """Run one scenario under the full checker bank.

    ``tracing=True`` forces span recording regardless of the sampled
    config (tracing is proven behaviour-neutral, so flagged runs can be
    re-executed with it to produce a Chrome trace at ``trace_path`` and
    a critical-path layer report at ``critpath_path``).  ``flight_path``
    dumps the always-on flight recorder's ring — available even on runs
    that never traced.
    """
    overrides = dict(QUICK_BASE)
    overrides.update(scenario.cluster)
    if tracing is not None:
        overrides["tracing"] = tracing
    config = ClusterConfig(**overrides)

    cluster = Cluster(config=config, seed=scenario.seed)
    sim = cluster.sim
    deployment = BlobSeerDeployment(
        cluster, num_providers=scenario.num_providers,
        num_metadata_providers=scenario.num_metadata_providers,
        chunk_size=scenario.chunk_size)

    injectors = build_injectors(scenario.injectors)
    straggler = next((i for i in injectors if isinstance(i, Straggler)),
                     None)
    thrash = next((i for i in injectors if isinstance(i, CacheThrash)),
                  None)

    ctx = RunContext(scenario=scenario, path=PATH, cluster=cluster,
                     deployment=deployment, injectors=injectors,
                     event_budget=max_events or event_budget(scenario))
    ctx.phase_outcomes = [["ok"] * scenario.num_ranks
                          for _ in scenario.phases]
    ctx.phase_versions = [[None] * scenario.num_ranks
                          for _ in scenario.phases]
    ctx.phase_reads = [[None] * scenario.num_ranks
                       for _ in scenario.phases]

    # ------------------------------------------------------------------
    # blob creation (so the adversary can read from simulated t=0)
    # ------------------------------------------------------------------
    setup = VectoredClient(deployment, cluster.add_node("fuzz-setup"),
                           name="fuzz-setup")
    ctx.all_clients.append(setup)

    def setup_main():
        yield from setup.create_blob(PATH, scenario.file_size,
                                     chunk_size=scenario.chunk_size)

    sim.run(stop_event=sim.process(setup_main(), name="fuzz-setup"))

    # ------------------------------------------------------------------
    # the MPI job
    # ------------------------------------------------------------------
    drivers: Dict[int, VersioningDriver] = {}
    comms = []

    def rank_main(mpi):
        if mpi.rank == 0:
            comms.append(mpi.comm)
        options = {}
        if straggler is not None and mpi.rank == straggler.rank:
            options["coalesce_max_delay"] = straggler.max_delay
        driver = VersioningDriver(
            deployment, mpi.node, rank_name=f"rank{mpi.rank}",
            write_coalescing=True, collective_buffering=True,
            collective_reads=True,
            collective_aggregators=scenario.num_aggregators, **options)
        drivers[mpi.rank] = driver
        handle = yield from File.open(driver, PATH, rank=mpi.rank,
                                      comm=mpi.comm,
                                      size_hint=scenario.file_size)
        try:
            for index, phase in enumerate(scenario.phases):
                for injector in injectors:
                    if injector.phase == index:
                        injector.arm(mpi.rank, driver)
                handle.set_view(0, BYTE, BYTE)
                try:
                    if phase.kind == "independent_write":
                        pairs = phase_write_pairs(phase, mpi.rank,
                                                  scenario.num_ranks)
                        for offset, payload in pairs:
                            yield from handle.write_at(offset, payload)
                        if straggler is not None \
                                and straggler.phase == index \
                                and mpi.rank == straggler.rank:
                            # outlast the flush watchdog: the queued writes
                            # publish early, out of rank order
                            yield mpi.sim.sleep(straggler.delay)
                        # rank-order publication, as the serial oracle
                        for turn in range(mpi.size):
                            if turn == mpi.rank:
                                yield from handle.sync()
                            yield from mpi.comm.barrier(mpi.rank)
                    elif phase.kind == "collective_write":
                        pairs = phase_write_pairs(phase, mpi.rank,
                                                  scenario.num_ranks)
                        if pairs:
                            filetype, payload = _rank_view(pairs)
                            handle.set_view(0, BYTE, filetype)
                            yield from handle.write_at_all(0, payload)
                        else:
                            yield from handle.write_at_all(0, b"")
                    elif phase.kind == "atomic_write":
                        pairs = phase_write_pairs(phase, mpi.rank,
                                                  scenario.num_ranks)
                        if pairs:
                            # concurrent overlapping atomic writers: the
                            # backend serializes them by version ticket
                            receipt = yield from \
                                driver.client.vwrite_and_wait(PATH, pairs)
                            ctx.phase_versions[index][mpi.rank] = \
                                receipt.version
                    elif phase.kind == "collective_read":
                        regions = phase_read_regions(phase, mpi.rank,
                                                     scenario.num_ranks)
                        if regions:
                            filetype, total = _read_view(regions)
                            handle.set_view(0, BYTE, filetype)
                            data = yield from handle.read_at_all(0, total)
                        else:
                            data = yield from handle.read_at_all(0, 0)
                        ctx.phase_reads[index][mpi.rank] = data
                    elif phase.kind in ("independent_read",
                                        "peer_miss_storm"):
                        regions = phase_read_regions(phase, mpi.rank,
                                                     scenario.num_ranks)
                        pieces = []
                        for offset, size in regions:
                            piece = yield from handle.read_at(offset, size)
                            pieces.append(piece)
                        ctx.phase_reads[index][mpi.rank] = b"".join(pieces)
                except Exception as exc:  # judged by clean_fault
                    ctx.phase_outcomes[index][mpi.rank] = type(exc).__name__
                # phase boundary: everyone arrives, dormant sabotage heals,
                # then sync-barrier so the next phase observes this one
                yield from mpi.comm.barrier(mpi.rank)
                for injector in injectors:
                    if injector.phase == index:
                        injector.disarm(mpi.rank, driver)
                handle.set_view(0, BYTE, BYTE)
                try:
                    yield from handle.sync()
                except Exception as exc:
                    if ctx.phase_outcomes[index][mpi.rank] == "ok":
                        ctx.phase_outcomes[index][mpi.rank] = \
                            type(exc).__name__
                yield from mpi.comm.barrier(mpi.rank)
        finally:
            yield from handle.close()

    processes = launch_mpi_job(cluster, scenario.num_ranks, rank_main,
                               ranks_per_node=scenario.ranks_per_node)

    if thrash is not None:
        adversary = VectoredClient(
            deployment, cluster.add_node("fuzz-adversary"),
            name="fuzz-adversary", metadata_cache_capacity=2)
        ctx.all_clients.append(adversary)
        stream = sim.rng.scope(SCOPE_FUZZ).stream("thrash")

        def adversary_main():
            for _ in range(thrash.spec.params["reads"]):
                offset = int(stream.integers(0, scenario.file_size))
                size = min(int(stream.integers(
                    1, thrash.spec.params["max_size"] + 1)),
                    scenario.file_size - offset)
                try:
                    yield from adversary.vread(PATH, [(offset, max(1, size))])
                except Exception as exc:
                    thrash.errors.append(f"{type(exc).__name__}: {exc}")
                thrash.note_read()
                yield sim.sleep(float(stream.uniform(1e-5, 2e-3)))

        processes = processes + [sim.process(adversary_main(),
                                             name="fuzz-adversary")]

    def waiter():
        yield sim.all_of(processes)
        return True

    waiter_process = sim.process(waiter(), name="fuzz-waiter")

    while not waiter_process.processed:
        if sim.peek() == float("inf"):
            ctx.deadlocked = True
            break
        try:
            sim.step()
        except Exception as exc:
            ctx.execution_anomalies.append(
                f"rank process crashed outside a phase: "
                f"{type(exc).__name__}: {exc}")
            break
        if sim.processed_events > ctx.event_budget:
            ctx.budget_exceeded = True
            break
    ctx.events_used = sim.processed_events
    ctx.drivers = drivers
    ctx.comm = comms[0] if comms else None
    ctx.all_clients.extend(driver.client for driver in drivers.values())

    # ------------------------------------------------------------------
    # fresh-client read-backs (byte identity + snapshot stability)
    # ------------------------------------------------------------------
    if ctx.finished and not ctx.execution_anomalies:
        for attempt in range(2):
            verify = VectoredClient(
                deployment, cluster.add_node(f"fuzz-verify{attempt}"),
                name=f"fuzz-verify{attempt}")
            ctx.all_clients.append(verify)

            def verify_main(client=verify):
                pieces = yield from client.vread(
                    PATH, [(0, scenario.file_size)])
                return pieces[0]

            try:
                data = sim.run(stop_event=sim.process(
                    verify_main(), name=f"fuzz-verify{attempt}"))
                ctx.final_reads.append(data)
            except SimulationError as exc:
                ctx.execution_anomalies.append(
                    f"read-back {attempt} failed: {exc}")
                break

    for injector in injectors:
        injector.observe(drivers)

    anomalies = run_checkers(ctx)

    result = RunResult(
        scenario=scenario,
        anomalies=anomalies,
        fired=sorted(injector.kind for injector in injectors
                     if injector.fired),
        dormant=sorted(injector.kind for injector in injectors
                       if not injector.fired),
        read_digest=(hashlib.sha256(ctx.final_reads[0]).hexdigest()
                     if ctx.final_reads else None),
        latest_version=(deployment.version_manager.manager
                        .latest_published(PATH) if ctx.finished else None),
        processed_events=sim.processed_events,
        sim_elapsed=round(sim.now, 9),
    )

    if config.tracing and trace_path is not None:
        dump_chrome_trace(cluster.obs.tracer, trace_path,
                          telemetry=cluster.obs.link_telemetry)
    if flight_path is not None and cluster.obs.flight is not None:
        cluster.obs.flight.dump(flight_path)
    # last: the critical-path analysis may raise on pathological traces
    # (deadlocked ranks leave partial spans); the dumps above still land
    if config.tracing and critpath_path is not None:
        dump_report(cluster.obs.tracer, critpath_path)
    return result
