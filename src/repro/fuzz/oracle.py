"""The serial byte oracle: rank-order application, shared by tests and fuzzer.

One implementation of the reference semantics every write mode is judged
against — MPI-I/O's *as-if-serial* contract: the final file contents must
equal applying each rank's vector immediately, in rank order (within a
rank: request order).  The conformance suites import these helpers through
``tests/_oracle.py``; the fuzzer's byte-identity checker builds on the
masked incremental variant below.

:class:`MaskedOracle` extends the plain oracle with an *uncertainty mask*
for fault-injected runs: when an aggregator dies mid-commit, some of the
collective's stripes may have published and some not, so the phase's union
extent becomes unverifiable — until a later write overwrites it and the
bytes are certain again.  Comparisons skip masked bytes; everything else
must match exactly.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

#: the conformance suites' historical default extent
FILE_SIZE_DEFAULT = 16 * 1024

WritePairs = Sequence[Tuple[int, bytes]]


def random_pattern(seed, num_ranks, file_size=FILE_SIZE_DEFAULT,
                   max_regions=4, max_region_size=1500,
                   empty_rank_chance=0.2):
    """Per-rank ``(offset, payload)`` lists: disjoint within a rank, freely
    overlapping across ranks, with occasional empty-handed ranks."""
    rng = random.Random(seed)
    pattern = []
    for rank in range(num_ranks):
        if num_ranks > 1 and rng.random() < empty_rank_chance:
            pattern.append([])
            continue
        count = rng.randint(1, max_regions)
        starts = sorted(rng.sample(range(file_size - max_region_size),
                                   count))
        regions = []
        for index, offset in enumerate(starts):
            limit = (starts[index + 1] - offset if index + 1 < count
                     else max_region_size)
            size = rng.randint(1, max(1, min(max_region_size, limit)))
            fill = bytes([1 + (rank * 41 + index * 13) % 255])
            regions.append((offset, fill * size))
        pattern.append(regions)
    return pattern


def serial_oracle(pattern, file_size=FILE_SIZE_DEFAULT):
    """The pattern applied in rank order (within a rank: region order)."""
    content = bytearray(file_size)
    apply_pattern(content, pattern)
    return bytes(content)


def apply_pattern(content: bytearray, pattern) -> None:
    """Apply per-rank ``(offset, payload)`` lists in rank order, in place."""
    for regions in pattern:
        for offset, payload in regions:
            content[offset:offset + len(payload)] = payload


def serial_oracle_vectors(vectors, file_size=FILE_SIZE_DEFAULT):
    """Rank-order application of already-built write vectors.

    Accepts anything with ``apply_to(bytearray)`` (e.g.
    :class:`repro.core.listio.IOVector` or the flattened vectors the File
    layer builds); within each vector, later requests win — the same
    (source rank, request sequence) resolution the aggregator promises.
    """
    content = bytearray(file_size)
    for vector in vectors:
        vector.apply_to(content)
    return bytes(content)


def pattern_extent(pattern) -> Optional[Tuple[int, int]]:
    """``(lo, hi)`` union over every rank's regions; ``None`` if all empty."""
    spans = [(offset, offset + len(payload))
             for regions in pattern for offset, payload in regions]
    if not spans:
        return None
    return min(lo for lo, _ in spans), max(hi for _, hi in spans)


class MaskedOracle:
    """Incremental serial oracle with an uncertainty mask.

    ``content`` is what a serial application of every (successful) write so
    far would produce; ``uncertain[i]`` is nonzero where an injected fault
    made byte ``i`` unpredictable.  Writes clear the mask (the new bytes are
    known again); comparisons skip masked bytes.
    """

    def __init__(self, file_size: int):
        self.file_size = file_size
        self.content = bytearray(file_size)
        self.uncertain = bytearray(file_size)

    # ------------------------------------------------------------------
    # evolving the expectation
    # ------------------------------------------------------------------
    def apply_pairs(self, pairs: WritePairs) -> None:
        """One writer's vector, applied in request order."""
        for offset, payload in pairs:
            end = offset + len(payload)
            self.content[offset:end] = payload
            self.uncertain[offset:end] = bytes(len(payload))

    def apply_pattern(self, pattern) -> None:
        """Per-rank pair lists in rank order (the serial reference)."""
        for pairs in pattern:
            self.apply_pairs(pairs)

    def mask(self, lo: int, hi: int) -> None:
        """Declare ``[lo, hi)`` unpredictable (a fault window)."""
        lo, hi = max(0, lo), min(self.file_size, hi)
        if hi > lo:
            self.uncertain[lo:hi] = b"\x01" * (hi - lo)

    @property
    def masked_bytes(self) -> int:
        return sum(1 for flag in self.uncertain if flag)

    # ------------------------------------------------------------------
    # judging observations
    # ------------------------------------------------------------------
    def mismatches(self, actual: bytes, base_offset: int = 0,
                   limit: int = 4) -> List[Tuple[int, int]]:
        """Differing unmasked runs of ``actual`` vs the expectation.

        ``actual`` covers file bytes ``[base_offset, base_offset +
        len(actual))``; returns up to ``limit`` ``(file_offset, run_length)``
        entries (empty means the observation is consistent).
        """
        runs: List[Tuple[int, int]] = []
        run_start = None
        for index, byte in enumerate(actual):
            position = base_offset + index
            differs = (position < self.file_size
                       and not self.uncertain[position]
                       and byte != self.content[position])
            if differs and run_start is None:
                run_start = position
            elif not differs and run_start is not None:
                runs.append((run_start, position - run_start))
                run_start = None
                if len(runs) >= limit:
                    return runs
        if run_start is not None:
            runs.append((run_start, base_offset + len(actual) - run_start))
        return runs

    def region_mismatches(self, regions: Sequence[Tuple[int, int]],
                          data: bytes, limit: int = 4
                          ) -> List[Tuple[int, int]]:
        """Judge one reader's concatenated region data against the oracle."""
        runs: List[Tuple[int, int]] = []
        cursor = 0
        for offset, size in regions:
            piece = data[cursor:cursor + size]
            cursor += size
            runs.extend(self.mismatches(piece, base_offset=offset,
                                        limit=limit - len(runs)))
            if len(runs) >= limit:
                break
        return runs
