"""PERF — cooperative cross-node metadata cache microbenchmarks.

Runs the identical-extent shared scan at a fixed ``ranks_per_node`` while
the compute-node count grows, with the node-local shared tier alone
(``shared``, the ``1/ranks_per_node`` ideal) and with the cooperative
peer tier on top (``coop``).  Asserts the acceptance shape — server-side
metadata shard RPCs per logical read strictly below the node-local ideal
whenever there is more than one node, and still *falling* as nodes are
added at a fixed ``ranks_per_node`` — plus byte-identical scan data
everywhere, exact zero-footprint when the tier is disabled (identical
counters under both network models, every peer counter zero), and live
in-flight fetch coalescing on the contended zero-stagger point.  Records
every row into ``BENCH_coopcache.json`` at the repository root so future
PRs can track the perf trajectory.

Set ``REPRO_BENCH_SMOKE=1`` to run the same shapes on a fraction of the
work (what CI does on every push).
"""

import json
import os
import platform
from dataclasses import replace
from pathlib import Path

import pytest

from repro.bench.coopcache import (
    CoopCacheSettings,
    run_coop_cache_suite,
    suite_rows,
)
from repro.bench.metrics import coop_rpc_reduction
from repro.bench.reporting import format_table

ARTIFACT = Path(__file__).resolve().parents[1] / "BENCH_coopcache.json"
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

#: both cost models every suite runs under; with the tier *disabled* the
#: cache counters must be bit-identical across them (zero behaviour change)
NETWORK_MODELS = ("bottleneck", "queued")


def bench_settings(network_model: str = "bottleneck") -> CoopCacheSettings:
    settings = CoopCacheSettings()
    settings = settings.scaled_down() if SMOKE else settings
    return replace(settings, config=replace(settings.config,
                                            network_model=network_model))


@pytest.fixture(scope="module")
def suite():
    """Run every point under both network models; emit the JSON artifact."""
    settings = bench_settings()
    results = {model: run_coop_cache_suite(bench_settings(model))
               for model in NETWORK_MODELS}
    rows = [row for model in NETWORK_MODELS
            for row in suite_rows(results[model])]

    reductions = {}
    for model in NETWORK_MODELS:
        for num_nodes in settings.node_counts:
            baseline = results[model][f"n{num_nodes}:shared"].sample
            coop = results[model][f"n{num_nodes}:coop"].sample
            reductions[f"{model}:n{num_nodes}"] = {
                "reduction": coop_rpc_reduction(baseline, coop),
                "num_nodes": num_nodes,
            }

    artifact = {
        "suite": "coopcache",
        "smoke": SMOKE,
        "python": platform.python_version(),
        "settings": {
            "node_counts": list(settings.node_counts),
            "ranks_per_node": settings.ranks_per_node,
            "rounds": settings.rounds,
            "blocks_per_round": settings.blocks_per_round,
            "block_size": settings.block_size,
            "num_providers": settings.num_providers,
            "num_metadata_providers": settings.num_metadata_providers,
            "chunk_size": settings.chunk_size,
            "provider_fraction": settings.provider_fraction,
        },
        "network_models": list(NETWORK_MODELS),
        "server_rpc_reduction_vs_shared": reductions,
        "rows": rows,
    }
    ARTIFACT.write_text(json.dumps(artifact, indent=2) + "\n")
    print()
    print(format_table(rows, title="cooperative-cache microbenchmark"))
    return results


def test_all_points_read_identical_bytes(suite):
    """Every mode, node count and network model returns byte-identical
    scan data — the cooperative tier and fetch coalescing must never
    change results."""
    settings = bench_settings()
    for model, results in suite.items():
        for key, result in results.items():
            workload = settings.workload(result.sample.num_clients)
            expected = b"".join(
                workload.expected_pieces(client, round_index)
                for client in range(workload.num_clients)
                for round_index in range(workload.rounds))
            assert result.read_digest == expected, f"{model}:{key}"


def test_coop_tier_beats_the_node_local_ideal(suite):
    """The acceptance criterion: with more than one compute node, the
    cooperative tier pushes authoritative shard RPCs per logical read
    strictly below the node-local shared tier (the ``1/ranks_per_node``
    ideal) — under both network models."""
    settings = bench_settings()
    multi = [n for n in settings.node_counts if n >= 2]
    assert multi, "suite must sweep at least one multi-node point"
    for model, results in suite.items():
        for num_nodes in multi:
            baseline = results[f"n{num_nodes}:shared"].sample
            coop = results[f"n{num_nodes}:coop"].sample
            assert coop.server_rpcs_per_read \
                < baseline.server_rpcs_per_read, (
                    f"{model}:n{num_nodes}: coop "
                    f"{coop.server_rpcs_per_read:.3f} vs node-local ideal "
                    f"{baseline.server_rpcs_per_read:.3f}")
            assert coop.peer_hits > 0, f"{model}:n{num_nodes}"


def test_coop_per_read_cost_falls_with_node_count(suite):
    """Scaling: at a fixed ``ranks_per_node``, the cooperative tier's
    per-read shard cost keeps *falling* as nodes are added (roughly one
    fetch per tree node cluster-wide), while the node-local tier's stays
    flat — that widening gap is the tier's reason to exist."""
    settings = bench_settings()
    for model, results in suite.items():
        series = [results[f"n{n}:coop"].sample.server_rpcs_per_read
                  for n in settings.node_counts]
        for smaller, larger in zip(series, series[1:]):
            assert larger < smaller, f"{model}: {series}"


def test_disabled_tier_has_zero_footprint(suite):
    """Zero behaviour change when ``cooperative_cache`` is off: no peer
    counter moves, and every cache counter is bit-identical across the
    two network cost models (the tier being off, nothing timing-sensitive
    is left in the metadata path)."""
    settings = bench_settings()
    for model, results in suite.items():
        for num_nodes in settings.node_counts:
            sample = results[f"n{num_nodes}:shared"].sample
            label = f"{model}:n{num_nodes}"
            assert sample.probe_rpcs == 0, label
            assert sample.peer_hits == 0, label
            assert sample.peer_rejections == 0, label
            assert sample.probe_misses == 0, label
            assert sample.read_throughs == 0, label
            assert sample.coalesced_fetches == 0, label
    for num_nodes in settings.node_counts:
        key = f"n{num_nodes}:shared"
        bottleneck = suite["bottleneck"][key]
        queued = suite["queued"][key]
        for column in ("server_read_rpcs", "client_metadata_rpcs",
                       "private_hits", "shared_hits", "fetched_lookups"):
            assert getattr(bottleneck.sample, column) \
                == getattr(queued.sample, column), f"{key}:{column}"
        assert bottleneck.read_digest == queued.read_digest, key


def test_contended_point_coalesces_in_flight_fetches(suite):
    """With a zero stagger every co-located client misses the same keys in
    the same instant; fetch coalescing must fold the simultaneous missers
    onto in-flight fetches instead of issuing duplicates."""
    for model, results in suite.items():
        sample = results["contended:coop"].sample
        assert sample.coalesced_fetches > 0, model
        assert sample.peer_hits + sample.probe_misses > 0, model


def test_peer_accounting_is_conserved(suite):
    """Every lookup the peer services served landed on exactly one client
    as an admitted hit or a watermark rejection (the point runner raises
    on violation; this pins the counters into the artifact contract)."""
    for model, results in suite.items():
        for key, result in results.items():
            sample = result.sample
            if sample.mode != "coop":
                continue
            assert result.coop_stats["served_hits"] \
                == sample.peer_hits + sample.peer_rejections, f"{model}:{key}"
            assert sample.probe_rpcs > 0 or sample.num_nodes == 1, \
                f"{model}:{key}"


def test_artifact_written_with_populated_columns(suite):
    artifact = json.loads(ARTIFACT.read_text())
    assert artifact["suite"] == "coopcache"
    assert artifact["rows"]
    assert {row["mode"] for row in artifact["rows"]} == {"shared", "coop"}
    assert {row["network_model"] for row in artifact["rows"]} \
        == set(NETWORK_MODELS)
    points = {row["point"] for row in artifact["rows"]}
    assert "contended:coop" in points
    for row in artifact["rows"]:
        assert row["logical_reads"] > 0
        assert row["server_read_rpcs"] > 0
        assert row["wall_clock_s"] > 0
        assert "server_rpcs_per_read" in row and "peer_hit_rate" in row
    reductions = artifact["server_rpc_reduction_vs_shared"]
    assert reductions
    for model in NETWORK_MODELS:
        assert any(entry["reduction"] > 1.0
                   for key, entry in reductions.items()
                   if key.startswith(f"{model}:") and entry["num_nodes"] >= 2)
