"""Shared settings and helpers for the benchmark suite.

The benchmarks regenerate the paper's tables/figures on a *quick* scale so
that ``pytest benchmarks/ --benchmark-only`` finishes in minutes; the
experiment functions accept larger :class:`ExperimentSettings` for the
full-size runs recorded in EXPERIMENTS.md.  Absolute throughput values are in
simulated MiB/s — only the comparative shapes are meaningful, which is what
the assertions check.
"""

from __future__ import annotations

import cProfile
import pstats
import sys
from contextlib import contextmanager
from typing import Dict, List, Sequence

from repro.bench.experiments import ExperimentSettings
from repro.cluster import ClusterConfig

#: how many hotspots ``profiled`` prints (sorted by cumulative time)
PROFILE_TOP = 25


@contextmanager
def profiled(title: str = "", top: int = PROFILE_TOP, stream=None):
    """Run the enclosed block under cProfile; print the top hotspots.

    Used by the ``--profile`` pytest option (see ``conftest.py``), which
    wraps every benchmark — fixtures included — so the module-scoped suite
    runs show up in the first test of each file.
    """
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield profiler
    finally:
        profiler.disable()
        out = stream or sys.stdout
        if title:
            print(f"\n--- profile: {title} (top {top} by cumulative) ---",
                  file=out)
        stats = pstats.Stats(profiler, stream=out)
        stats.strip_dirs().sort_stats("cumulative").print_stats(top)


def quick_settings(client_counts: Sequence[int] = (1, 2, 4, 8)) -> ExperimentSettings:
    """Benchmark-suite settings: small but large enough to show the shapes."""
    return ExperimentSettings(
        client_counts=tuple(client_counts),
        num_storage_nodes=8,
        stripe_unit=64 * 1024,
        num_metadata_providers=2,
        regions_per_client=8,
        region_size=64 * 1024,
        overlap_fraction=0.5,
        tile_elements_x=64,
        tile_elements_y=64,
        element_size=32,
        tile_overlap=8,
        config=ClusterConfig(),
    )


def curves_by_backend(rows: List[Dict[str, object]],
                      value: str = "throughput_mib_s") -> Dict[str, Dict[int, float]]:
    """Pivot experiment rows into per-backend curves keyed by client count."""
    curves: Dict[str, Dict[int, float]] = {}
    for row in rows:
        curves.setdefault(str(row["backend"]), {})[int(row["clients"])] = float(row[value])
    return curves


def assert_versioning_wins(curves: Dict[str, Dict[int, float]],
                           baseline: str = "posix-locking",
                           min_factor: float = 1.5,
                           min_clients: int = 2) -> None:
    """The paper's qualitative claim: versioning wins under concurrency."""
    versioning = curves["versioning"]
    locking = curves[baseline]
    for clients, value in versioning.items():
        if clients >= min_clients:
            assert value > locking[clients] * min_factor, (
                f"versioning ({value:.1f}) not {min_factor}x above {baseline} "
                f"({locking[clients]:.1f}) at {clients} clients")


def assert_scales_up(curve: Dict[int, float], factor: float = 1.5) -> None:
    """Aggregated throughput grows with client count (up to saturation)."""
    clients = sorted(curve)
    assert curve[clients[-1]] > curve[clients[0]] * factor, (
        f"no scaling: {curve}")


def assert_roughly_flat_or_declining(curve: Dict[int, float],
                                     tolerance: float = 1.6) -> None:
    """The serialized baseline does not scale with client count."""
    clients = sorted(curve)
    assert curve[clients[-1]] < curve[clients[0]] * tolerance, (
        f"baseline unexpectedly scales: {curve}")
