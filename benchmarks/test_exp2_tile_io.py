"""EXP2 (Figure B): the MPI-tile-IO benchmark.

Paper: "we performed an evaluation of the performance of our approach using a
standard benchmark, MPI-tile-IO, that closely simulates the access patterns
of real scientific applications that split the input data into overlapped
subdomains that need to be concurrently written in the same file under MPI
atomicity guarantees."  Expected shape: same as EXP1 — versioning scales,
locking does not.
"""

from benchmarks.common import (
    assert_scales_up,
    assert_versioning_wins,
    curves_by_backend,
    quick_settings,
)
from repro.bench.experiments import run_exp2_tile_io
from repro.bench.reporting import format_series, format_table


def test_exp2_tile_io(benchmark):
    settings = quick_settings(client_counts=(1, 2, 4, 8, 16))
    rows = benchmark.pedantic(run_exp2_tile_io, args=(settings,),
                              rounds=1, iterations=1)

    print()
    print(format_table(rows, title="EXP2 — MPI-tile-IO write phase "
                                   "(overlapping tile borders, atomic mode)"))
    curves = curves_by_backend(rows)
    print(format_series(curves, title="EXP2 series (aggregated MiB/s)"))

    assert_versioning_wins(curves, min_factor=1.5, min_clients=4)
    assert_scales_up(curves["versioning"], factor=1.3)
