"""FUT1: producer/consumer pipelines through application-level versioning.

The paper's conclusion motivates exposing the versioning interface at
application level for producer-consumer workloads (simulation output consumed
concurrently by visualization).  On the versioning backend consumers read
published snapshots and never synchronize with producers; on the locking
backend consumers take shared covering locks and stall the producers.
"""

from benchmarks.common import quick_settings
from repro.bench.producer_consumer import run_fut1_producer_consumer
from repro.bench.reporting import format_table


def test_fut1_producer_consumer(benchmark):
    settings = quick_settings()
    rows = benchmark.pedantic(
        run_fut1_producer_consumer, args=(settings,),
        kwargs={"num_producers": 4, "num_consumers": 2, "iterations": 3},
        rounds=1, iterations=1)

    print()
    print(format_table(rows, title="FUT1 — concurrent simulation dumps + "
                                   "visualization reads"))

    by_backend = {row["backend"]: row for row in rows}
    versioning = by_backend["versioning"]
    locking = by_backend["posix-locking"]
    # producers are not slowed down by concurrent readers on the versioning
    # backend, while the locking baseline serializes the two groups
    assert versioning["producer_mib_s"] > locking["producer_mib_s"]
    # consumers see published snapshots without waiting on writer locks
    assert versioning["consumer_read_latency_s"] < \
        locking["consumer_read_latency_s"]
