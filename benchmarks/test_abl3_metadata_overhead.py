"""ABL3: the cost of versioning itself — metadata and publication overhead.

The versioning approach trades locks for per-write metadata (copy-on-write
tree nodes) and a serialized (but tiny) publication step at the version
manager.  This ablation sweeps the number of regions per vectored write and
an artificial per-snapshot publication cost, showing how much headroom the
design has before its own serialization point would start to matter.
"""

from benchmarks.common import quick_settings
from repro.bench.experiments import run_abl3_metadata_overhead
from repro.bench.reporting import format_table


def test_abl3_metadata_overhead(benchmark):
    settings = quick_settings()
    rows = benchmark.pedantic(
        run_abl3_metadata_overhead, args=(settings,),
        kwargs={"num_clients": 8,
                "regions_per_client_values": (1, 8, 64),
                "publish_costs": (0.0, 1e-3)},
        rounds=1, iterations=1)

    print()
    print(format_table(rows, title="ABL3 — metadata / publication overhead "
                                   "of the versioning backend (8 clients)"))

    # more regions per write -> more metadata nodes written
    nodes_by_regions = {}
    for row in rows:
        if row["publish_cost_ms"] == 0.0:
            nodes_by_regions[row["regions_per_client"]] = row["metadata_nodes"]
    assert nodes_by_regions[64] > nodes_by_regions[8] > nodes_by_regions[1]

    # a millisecond-scale publication cost must not collapse throughput
    # (the publication step is tiny compared to the data path)
    for regions in (1, 8, 64):
        free = next(row["throughput_mib_s"] for row in rows
                    if row["regions_per_client"] == regions
                    and row["publish_cost_ms"] == 0.0)
        costed = next(row["throughput_mib_s"] for row in rows
                      if row["regions_per_client"] == regions
                      and row["publish_cost_ms"] == 1.0)
        assert costed > free * 0.5
