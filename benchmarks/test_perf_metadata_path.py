"""PERF — metadata read-path microbenchmarks (cache + per-level batching).

Runs the EXP1-style overlapped-write / repeated-read workload through the
three client configurations of :mod:`repro.bench.metadata_path` with one
shared harness, asserts the acceptance shape (>= 5x fewer metadata RPC
round-trips on the warm-cache path than the uncached one-RPC-per-node
baseline, byte-identical reads), and records every row — metadata RPCs,
cache hit rate, simulated seconds, wall-clock seconds — into
``BENCH_metadata.json`` at the repository root so future PRs can track the
perf trajectory.

Set ``REPRO_BENCH_SMOKE=1`` to run the same shapes on a fraction of the
work (what CI does on every push).
"""

import json
import os
import platform
from pathlib import Path

import pytest

from repro.bench.metadata_path import (
    MODES,
    MetadataPathSettings,
    run_metadata_path_suite,
    run_region_algebra_microbench,
)
from repro.bench.metrics import rpc_reduction
from repro.bench.reporting import format_table

ARTIFACT = Path(__file__).resolve().parents[1] / "BENCH_metadata.json"
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

#: acceptance threshold: warm-cache path vs uncached baseline round-trips
MIN_RPC_REDUCTION = 5.0


def bench_settings() -> MetadataPathSettings:
    settings = MetadataPathSettings()
    return settings.scaled_down() if SMOKE else settings


@pytest.fixture(scope="module")
def suite():
    """Run all modes once on identical settings; emit the JSON artifact."""
    settings = bench_settings()
    results = run_metadata_path_suite(settings)
    rows = [results[mode].sample.as_row() for mode in MODES]
    rows.append(run_region_algebra_microbench())
    artifact = {
        "suite": "metadata-read-path",
        "smoke": SMOKE,
        "python": platform.python_version(),
        "settings": {
            "num_clients": settings.num_clients,
            "regions_per_client": settings.regions_per_client,
            "region_size": settings.region_size,
            "overlap_fraction": settings.overlap_fraction,
            "read_repeats": settings.read_repeats,
            "num_metadata_providers": settings.num_metadata_providers,
            "chunk_size": settings.chunk_size,
        },
        "rpc_reduction_vs_baseline": {
            mode: rpc_reduction(results["baseline"].sample, results[mode].sample)
            for mode in MODES
        },
        "rows": rows,
    }
    ARTIFACT.write_text(json.dumps(artifact, indent=2) + "\n")
    print()
    print(format_table(rows, title="metadata read-path microbenchmark"))
    return results


def test_all_modes_read_identical_bytes(suite):
    baseline = suite["baseline"].read_digest
    assert suite["batched"].read_digest == baseline
    assert suite["cached-batched"].read_digest == baseline


def test_batching_collapses_round_trips(suite):
    """One RPC per shard per level beats one RPC per node on cold reads alone."""
    assert suite["batched"].sample.metadata_rpcs \
        < suite["baseline"].sample.metadata_rpcs / 2


def test_warm_cache_rpc_reduction_at_least_5x(suite):
    """The acceptance criterion: >= 5x fewer metadata round-trips."""
    reduction = rpc_reduction(suite["baseline"].sample,
                              suite["cached-batched"].sample)
    assert reduction >= MIN_RPC_REDUCTION, (
        f"only {reduction:.1f}x fewer metadata RPCs "
        f"({suite['baseline'].sample.metadata_rpcs} -> "
        f"{suite['cached-batched'].sample.metadata_rpcs})")


def test_warm_cache_hit_rate_is_high(suite):
    sample = suite["cached-batched"].sample
    assert sample.cache_hit_rate > 0.5
    # uncached modes must report a zero (not misleading) hit rate
    assert suite["baseline"].sample.cache_hit_rate == 0.0


def test_cached_reads_are_not_slower_in_simulated_time(suite):
    assert suite["cached-batched"].sample.sim_elapsed_s \
        <= suite["baseline"].sample.sim_elapsed_s * 1.05


def test_artifact_written_with_populated_columns(suite):
    artifact = json.loads(ARTIFACT.read_text())
    assert artifact["suite"] == "metadata-read-path"
    modes = {row["mode"] for row in artifact["rows"]}
    assert modes == set(MODES) | {"region-algebra"}
    for row in artifact["rows"]:
        if row["mode"] == "region-algebra":
            assert row["wall_clock_s"] > 0
            continue
        assert row["metadata_rpcs"] > 0
        assert row["wall_clock_s"] > 0
        assert "cache_hit_rate" in row and "sim_elapsed_s" in row
    assert artifact["rpc_reduction_vs_baseline"]["cached-batched"] \
        >= MIN_RPC_REDUCTION
