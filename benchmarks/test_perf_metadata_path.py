"""PERF — metadata read-path microbenchmarks (cache + per-level batching).

Runs the EXP1-style overlapped-write / repeated-read workload through the
three client configurations of :mod:`repro.bench.metadata_path` with one
shared harness, asserts the acceptance shape (>= 5x fewer metadata RPC
round-trips on the warm-cache path than the uncached one-RPC-per-node
baseline, byte-identical reads), and records every row — metadata RPCs,
cache hit rate, simulated seconds, wall-clock seconds — into
``BENCH_metadata.json`` at the repository root so future PRs can track the
perf trajectory.

Set ``REPRO_BENCH_SMOKE=1`` to run the same shapes on a fraction of the
work (what CI does on every push).
"""

import json
import os
import platform
from dataclasses import replace
from pathlib import Path

import pytest

from repro.bench.metadata_path import (
    MODES,
    MetadataPathSettings,
    run_metadata_path_suite,
    run_region_algebra_microbench,
)
from repro.bench.metrics import rpc_reduction
from repro.bench.reporting import format_table

ARTIFACT = Path(__file__).resolve().parents[1] / "BENCH_metadata.json"
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

#: acceptance threshold: warm-cache path vs uncached baseline round-trips
MIN_RPC_REDUCTION = 5.0


#: both cost models every suite runs under (the cost model shapes timing,
#: never bytes or RPC counts — asserted below)
NETWORK_MODELS = ("bottleneck", "queued")


def bench_settings(network_model: str = "bottleneck") -> MetadataPathSettings:
    settings = MetadataPathSettings()
    settings = settings.scaled_down() if SMOKE else settings
    return replace(settings, config=replace(settings.config,
                                            network_model=network_model))


@pytest.fixture(scope="module")
def suite():
    """Run all modes under both network models; emit the JSON artifact."""
    settings = bench_settings()
    by_model = {model: run_metadata_path_suite(bench_settings(model))
                for model in NETWORK_MODELS}
    results = by_model["bottleneck"]
    rows = [by_model[model][mode].sample.as_row()
            for model in NETWORK_MODELS for mode in MODES]
    rows.append(run_region_algebra_microbench())
    artifact = {
        "suite": "metadata-read-path",
        "smoke": SMOKE,
        "python": platform.python_version(),
        "settings": {
            "num_clients": settings.num_clients,
            "regions_per_client": settings.regions_per_client,
            "region_size": settings.region_size,
            "overlap_fraction": settings.overlap_fraction,
            "read_repeats": settings.read_repeats,
            "num_metadata_providers": settings.num_metadata_providers,
            "chunk_size": settings.chunk_size,
        },
        "network_models": list(NETWORK_MODELS),
        "rpc_reduction_vs_baseline": {
            f"{model}:{mode}": rpc_reduction(
                by_model[model]["baseline"].sample,
                by_model[model][mode].sample)
            for model in NETWORK_MODELS for mode in MODES
        },
        "rows": rows,
    }
    ARTIFACT.write_text(json.dumps(artifact, indent=2) + "\n")
    print()
    print(format_table(rows, title="metadata read-path microbenchmark"))
    return by_model


def test_all_modes_read_identical_bytes(suite):
    """Every mode — and every network model — returns the same bytes."""
    baseline = suite["bottleneck"]["baseline"].read_digest
    for model, results in suite.items():
        for mode in MODES:
            assert results[mode].read_digest == baseline, f"{model}:{mode}"


def test_batching_collapses_round_trips(suite):
    """One RPC per shard per level beats one RPC per node on cold reads alone."""
    for model, results in suite.items():
        assert results["batched"].sample.metadata_rpcs \
            < results["baseline"].sample.metadata_rpcs / 2, model


def test_warm_cache_rpc_reduction_at_least_5x(suite):
    """The acceptance criterion: >= 5x fewer metadata round-trips — under
    both network models (RPC counts are protocol, not cost-model)."""
    for model, results in suite.items():
        reduction = rpc_reduction(results["baseline"].sample,
                                  results["cached-batched"].sample)
        assert reduction >= MIN_RPC_REDUCTION, (
            f"{model}: only {reduction:.1f}x fewer metadata RPCs "
            f"({results['baseline'].sample.metadata_rpcs} -> "
            f"{results['cached-batched'].sample.metadata_rpcs})")


def test_rpc_counts_do_not_depend_on_the_network_model(suite):
    for mode in MODES:
        bottleneck = suite["bottleneck"][mode].sample
        queued = suite["queued"][mode].sample
        assert bottleneck.metadata_rpcs == queued.metadata_rpcs, mode
        assert bottleneck.cache_hits == queued.cache_hits, mode
        assert bottleneck.cache_misses == queued.cache_misses, mode


def test_warm_cache_hit_rate_is_high(suite):
    sample = suite["bottleneck"]["cached-batched"].sample
    assert sample.cache_hit_rate > 0.5
    # uncached modes must report a zero (not misleading) hit rate
    assert suite["bottleneck"]["baseline"].sample.cache_hit_rate == 0.0


def test_cached_reads_are_not_slower_in_simulated_time(suite):
    for model, results in suite.items():
        assert results["cached-batched"].sample.sim_elapsed_s \
            <= results["baseline"].sample.sim_elapsed_s * 1.05, model


def test_artifact_written_with_populated_columns(suite):
    artifact = json.loads(ARTIFACT.read_text())
    assert artifact["suite"] == "metadata-read-path"
    modes = {row["mode"] for row in artifact["rows"]}
    assert modes == set(MODES) | {"region-algebra"}
    for row in artifact["rows"]:
        if row["mode"] == "region-algebra":
            assert row["wall_clock_s"] > 0
            continue
        assert row["metadata_rpcs"] > 0
        assert row["wall_clock_s"] > 0
        assert "cache_hit_rate" in row and "sim_elapsed_s" in row
    assert {row.get("network_model") for row in artifact["rows"]} \
        >= set(NETWORK_MODELS)
    for model in NETWORK_MODELS:
        assert artifact["rpc_reduction_vs_baseline"][f"{model}:cached-batched"] \
            >= MIN_RPC_REDUCTION
