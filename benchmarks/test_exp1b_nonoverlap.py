"""EXP1b (Figure A'): the non-overlapping control and conflict detection.

Related work [9] (Sehrish et al.) avoids locking when a conflict-detection
pass proves the concurrent accesses disjoint, at the cost of the detection
itself.  With ``overlap_fraction = 0`` the stress workload becomes disjoint:
conflict detection then beats covering-extent locking, and the versioning
backend needs no detection pass at all.
"""

from benchmarks.common import curves_by_backend, quick_settings
from repro.bench.experiments import run_exp1b_nonoverlapping
from repro.bench.reporting import format_series, format_table


def test_exp1b_nonoverlapping(benchmark):
    settings = quick_settings(client_counts=(2, 4, 8))
    rows = benchmark.pedantic(run_exp1b_nonoverlapping, args=(settings,),
                              rounds=1, iterations=1)

    print()
    print(format_table(rows, title="EXP1b — disjoint accesses "
                                   "(conflict-detection's use case)"))
    curves = curves_by_backend(rows)
    print(format_series(curves, title="EXP1b series (aggregated MiB/s)"))

    # without overlaps the conflict-detection optimization avoids the
    # covering-extent serialization, so it must beat plain locking...
    for clients in curves["conflict-detect"]:
        if clients >= 4:
            assert curves["conflict-detect"][clients] > \
                curves["posix-locking"][clients]
    # ...and the versioning backend still needs no locks nor detection
    for clients, value in curves["versioning"].items():
        if clients >= 4:
            assert value >= curves["posix-locking"][clients]
