"""PERF — simulator-core benchmark (calendar queue + queued network).

Runs the fine-grained interleaved collective checkpoint (the workload the
growth seed spent ~28 s of host time on) under the fast engine, the queued
network model and the in-tree legacy engine/heapq profile, plus a pure
scheduler-churn microbenchmark and queued-model scale points up to the
4096-rank smoke shape.  Results — wall-clock seconds, processed events,
events/sec, cross-model read digests and the speedup against the seed
reference — land in ``BENCH_simcore.json`` at the repository root.

The seed comparison uses a pinned measurement of commit ``0473493`` (taken
on the same host/python via a git worktree; see
``repro.bench.simcore.SEED_REFERENCE`` for provenance).  Set
``REPRO_BENCH_SEED_SRC`` to the ``src`` directory of a seed checkout to
re-measure it live instead — the acceptance assertion applies whenever the
headline point matches the reference workload (i.e. in full mode).

Set ``REPRO_BENCH_SMOKE=1`` to run the same shapes on a fraction of the
work (what CI does on every push).
"""

import json
import os
import platform
from dataclasses import asdict
from pathlib import Path

import pytest

from repro.bench.reporting import format_table
from repro.bench.simcore import (
    SEED_REFERENCE,
    SimcoreSettings,
    run_simcore_suite,
)

ARTIFACT = Path(__file__).resolve().parents[1] / "BENCH_simcore.json"
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

#: acceptance floor on the headline speedup vs the seed scheduler/engine
MIN_SPEEDUP_VS_SEED = 5.0


def bench_settings() -> SimcoreSettings:
    settings = SimcoreSettings()
    return settings.scaled_down() if SMOKE else settings


@pytest.fixture(scope="module")
def suite():
    """Run every point on identical settings; emit the JSON artifact."""
    settings = bench_settings()
    results = run_simcore_suite(settings)

    artifact = {
        "suite": "simcore",
        "smoke": SMOKE,
        "python": platform.python_version(),
        "settings": asdict(settings),
        "seed_reference": results["seed_reference"],
        "speedup_vs_seed": results["speedup_vs_seed"],
        "digests_identical_across_network_models":
            results["digests_identical_across_network_models"],
        "rows": results["rows"],
    }
    ARTIFACT.write_text(json.dumps(artifact, indent=2) + "\n")
    print()
    print(format_table(
        results["rows"],
        columns=["label", "kind", "num_ranks", "network_model", "engine",
                 "scheduler", "wall_clock_s", "processed_events",
                 "events_per_sec"],
        title="simulator-core benchmark"))
    return results


def test_headline_beats_seed_by_5x(suite):
    """The acceptance criterion: >=5x wall-clock on the 64-client collective
    sweep vs the seed scheduler.  Only enforceable when the headline point
    matches the reference workload — smoke mode records but does not gate."""
    if SMOKE:
        assert suite["speedup_vs_seed"] is None or suite["speedup_vs_seed"] > 0
        return
    assert suite["speedup_vs_seed"] is not None
    assert suite["speedup_vs_seed"] >= MIN_SPEEDUP_VS_SEED, (
        f"headline point only {suite['speedup_vs_seed']:.2f}x faster than the "
        f"seed reference ({suite['seed_reference']['wall_clock_s_used']} s)")


def test_smoke_point_completes(suite):
    """The largest queued-model point ran to completion with sane counters."""
    settings = bench_settings()
    scale_rows = [row for row in suite["rows"]
                  if row["kind"] == "collective_io"
                  and row["label"].startswith("scale-")]
    largest = max(scale_rows, key=lambda row: row["num_ranks"])
    assert largest["num_ranks"] == settings.smoke_point[0]
    assert largest["network_model"] == "queued"
    assert largest["processed_events"] > largest["num_ranks"]
    assert largest["wall_clock_s"] > 0
    assert largest["events_per_sec"] > 0


def test_network_models_move_identical_bytes(suite):
    """Same workload under bottleneck and queued leaves identical file
    contents — the cost model changes timing, never data."""
    assert suite["digests_identical_across_network_models"]
    by_label = {row["label"]: row for row in suite["rows"]}
    assert by_label["headline"]["read_digest"] \
        == by_label["headline-queued"]["read_digest"]
    # ...and the queued run simulates a different (not smaller) timeline
    assert by_label["headline-queued"]["sim_elapsed_s"] > 0


def test_scheduler_backends_stay_in_the_same_band(suite):
    """The pure engine microbenchmark: both queue backends process the
    identical schedule, and neither may collapse relative to the other
    (the end-to-end speedup lives in the engine/domain path, not the queue
    — this row guards against a future regression in either backend)."""
    by_label = {row["label"]: row for row in suite["rows"]}
    calendar = by_label["churn-calendar"]
    heapq_row = by_label["churn-heapq"]
    assert calendar["processed_events"] == heapq_row["processed_events"]
    assert calendar["events_per_sec"] >= heapq_row["events_per_sec"] / 2.5, (
        f"calendar {calendar['events_per_sec']}/s vs heapq "
        f"{heapq_row['events_per_sec']}/s")
    assert heapq_row["events_per_sec"] >= calendar["events_per_sec"] / 2.5, (
        f"heapq {heapq_row['events_per_sec']}/s vs calendar "
        f"{calendar['events_per_sec']}/s")


def test_legacy_profile_recorded(suite):
    """The in-tree legacy engine/heapq row exists for trajectory tracking
    and moved the same bytes as the fast profile."""
    by_label = {row["label"]: row for row in suite["rows"]}
    legacy = by_label["headline-legacy-heapq"]
    assert legacy["engine"] == "legacy"
    assert legacy["scheduler"] == "heapq"
    assert legacy["read_digest"] == by_label["headline"]["read_digest"]


def test_artifact_written_with_populated_columns(suite):
    artifact = json.loads(ARTIFACT.read_text())
    assert artifact["suite"] == "simcore"
    assert artifact["seed_reference"]["commit"] == SEED_REFERENCE["commit"]
    labels = {row["label"] for row in artifact["rows"]}
    assert {"headline", "headline-queued", "churn-calendar",
            "churn-heapq"} <= labels
    for row in artifact["rows"]:
        assert row["wall_clock_s"] >= 0
        assert row["processed_events"] > 0
        assert row["events_per_sec"] >= 0
