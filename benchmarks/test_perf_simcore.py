"""PERF — simulator-core benchmark (calendar queue + queued network).

Runs the fine-grained interleaved collective checkpoint (the workload the
growth seed spent ~28 s of host time on) under the fast engine, the queued
network model and the in-tree legacy engine/heapq profile, plus a pure
scheduler-churn microbenchmark and queued-model scale points up to the
4096-rank smoke shape.  Results — wall-clock seconds, processed events,
events/sec, cross-model read digests and the speedup against the seed
reference — land in ``BENCH_simcore.json`` at the repository root.

The seed comparison uses a pinned measurement of commit ``0473493`` (taken
on the same host/python via a git worktree; see
``repro.bench.simcore.SEED_REFERENCE`` for provenance).  Set
``REPRO_BENCH_SEED_SRC`` to the ``src`` directory of a seed checkout to
re-measure it live instead — the acceptance assertion applies whenever the
headline point matches the reference workload (i.e. in full mode).

Set ``REPRO_BENCH_SMOKE=1`` to run the same shapes on a fraction of the
work (what CI does on every push).
"""

import json
import os
import platform
import subprocess
import sys
from dataclasses import asdict
from pathlib import Path

import pytest

from repro.bench.reporting import format_table
from repro.bench.simcore import (
    SEED_REFERENCE,
    SimcoreSettings,
    run_collective_io_point,
    run_simcore_suite,
)
from repro.cluster.config import ClusterConfig

ARTIFACT = Path(__file__).resolve().parents[1] / "BENCH_simcore.json"
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

#: acceptance floor on the headline speedup vs the seed scheduler/engine
MIN_SPEEDUP_VS_SEED = 5.0

#: tracing-disabled headline wall-clock of the PR that introduced the
#: observability subsystem's *predecessor* artifact (fallback when no
#: committed artifact is readable at collection time)
PRIOR_HEADLINE_WALL_S = 1.558

#: the tracing-disabled headline may cost at most this factor over the
#: pre-observability baseline *measured on the same host* (set
#: ``REPRO_BENCH_BASELINE_SRC`` to the ``src`` dir of a pre-observability
#: checkout to take that measurement live; min-of-retries damps noise)
TRACING_DISABLED_BUDGET = 1.02

#: the committed artifact's headline was taken on a different host; the
#: same code drifts 10-15% across this repo's hosts (measured: the
#: pre-observability commit's 1.558 s headline re-runs at 1.6-2.0 s
#: elsewhere), so without a live baseline the pinned number can only gate
#: gross regressions, not the 2% budget
HOST_DRIFT_ALLOWANCE = 1.35

#: runs the pre-observability headline point in a subprocess against
#: ``REPRO_BENCH_BASELINE_SRC`` (mirrors ``REPRO_BENCH_SEED_SRC``)
_BASELINE_SCRIPT = """
import json, sys, time
from repro.bench.simcore import run_collective_io_point
from repro.cluster.config import ClusterConfig

ranks, blocks, block_size, rounds, aggs, providers, metas, chunk, seed = \\
    (int(arg) for arg in sys.argv[1:])
walls = []
for _ in range(2):
    row = run_collective_io_point(
        ranks, blocks, block_size, rounds, aggs, config=ClusterConfig(),
        num_providers=providers, num_metadata_providers=metas,
        chunk_size=chunk, seed=seed)
    walls.append(row["wall_clock_s"])
print(json.dumps({"wall_clock_s": min(walls)}))
"""


def _live_baseline_wall(settings: SimcoreSettings):
    """Same-host pre-observability headline, or None when unset."""
    baseline_src = os.environ.get("REPRO_BENCH_BASELINE_SRC")
    if not baseline_src:
        return None
    env = dict(os.environ, PYTHONPATH=baseline_src)
    result = subprocess.run(
        [sys.executable, "-c", _BASELINE_SCRIPT,
         str(settings.num_ranks), str(settings.blocks_per_rank),
         str(settings.block_size), str(settings.read_rounds),
         str(settings.num_aggregators), str(settings.num_providers),
         str(settings.num_metadata_providers), str(settings.chunk_size),
         str(settings.seed)],
        env=env, capture_output=True, text=True, check=True)
    return float(json.loads(
        result.stdout.strip().splitlines()[-1])["wall_clock_s"])


def _prior_headline_wall() -> float:
    """Headline wall-clock of the committed (pre-run) artifact.

    Read at import time — the suite fixture overwrites the artifact."""
    try:
        artifact = json.loads(ARTIFACT.read_text())
        if artifact.get("smoke"):
            return PRIOR_HEADLINE_WALL_S
        for row in artifact["rows"]:
            if row.get("label") == "headline":
                return float(row["wall_clock_s"])
    except (OSError, KeyError, ValueError):
        pass
    return PRIOR_HEADLINE_WALL_S


_PRIOR_HEADLINE_WALL = _prior_headline_wall()


def bench_settings() -> SimcoreSettings:
    settings = SimcoreSettings()
    return settings.scaled_down() if SMOKE else settings


@pytest.fixture(scope="module")
def suite():
    """Run every point on identical settings; emit the JSON artifact."""
    settings = bench_settings()
    results = run_simcore_suite(settings)

    artifact = {
        "suite": "simcore",
        "smoke": SMOKE,
        "python": platform.python_version(),
        "settings": asdict(settings),
        "seed_reference": results["seed_reference"],
        "speedup_vs_seed": results["speedup_vs_seed"],
        "digests_identical_across_network_models":
            results["digests_identical_across_network_models"],
        "tracing_overhead_pct": results["tracing_overhead_pct"],
        "tracing_invariant": results["tracing_invariant"],
        "rows": results["rows"],
    }
    ARTIFACT.write_text(json.dumps(artifact, indent=2) + "\n")
    print()
    print(format_table(
        results["rows"],
        columns=["label", "kind", "num_ranks", "network_model", "engine",
                 "scheduler", "wall_clock_s", "processed_events",
                 "events_per_sec"],
        title="simulator-core benchmark"))
    return results


def test_headline_beats_seed_by_5x(suite):
    """The acceptance criterion: >=5x wall-clock on the 64-client collective
    sweep vs the seed scheduler.  Only enforceable when the headline point
    matches the reference workload — smoke mode records but does not gate."""
    if SMOKE:
        assert suite["speedup_vs_seed"] is None or suite["speedup_vs_seed"] > 0
        return
    assert suite["speedup_vs_seed"] is not None
    assert suite["speedup_vs_seed"] >= MIN_SPEEDUP_VS_SEED, (
        f"headline point only {suite['speedup_vs_seed']:.2f}x faster than the "
        f"seed reference ({suite['seed_reference']['wall_clock_s_used']} s)")


def test_smoke_point_completes(suite):
    """The largest queued-model point ran to completion with sane counters."""
    settings = bench_settings()
    scale_rows = [row for row in suite["rows"]
                  if row["kind"] == "collective_io"
                  and row["label"].startswith("scale-")]
    largest = max(scale_rows, key=lambda row: row["num_ranks"])
    assert largest["num_ranks"] == settings.smoke_point[0]
    assert largest["network_model"] == "queued"
    assert largest["processed_events"] > largest["num_ranks"]
    assert largest["wall_clock_s"] > 0
    assert largest["events_per_sec"] > 0


def test_network_models_move_identical_bytes(suite):
    """Same workload under bottleneck and queued leaves identical file
    contents — the cost model changes timing, never data."""
    assert suite["digests_identical_across_network_models"]
    by_label = {row["label"]: row for row in suite["rows"]}
    assert by_label["headline"]["read_digest"] \
        == by_label["headline-queued"]["read_digest"]
    # ...and the queued run simulates a different (not smaller) timeline
    assert by_label["headline-queued"]["sim_elapsed_s"] > 0


def test_scheduler_backends_stay_in_the_same_band(suite):
    """The pure engine microbenchmark: both queue backends process the
    identical schedule, and neither may collapse relative to the other
    (the end-to-end speedup lives in the engine/domain path, not the queue
    — this row guards against a future regression in either backend)."""
    by_label = {row["label"]: row for row in suite["rows"]}
    calendar = by_label["churn-calendar"]
    heapq_row = by_label["churn-heapq"]
    assert calendar["processed_events"] == heapq_row["processed_events"]
    assert calendar["events_per_sec"] >= heapq_row["events_per_sec"] / 2.5, (
        f"calendar {calendar['events_per_sec']}/s vs heapq "
        f"{heapq_row['events_per_sec']}/s")
    assert heapq_row["events_per_sec"] >= calendar["events_per_sec"] / 2.5, (
        f"heapq {heapq_row['events_per_sec']}/s vs calendar "
        f"{calendar['events_per_sec']}/s")


def test_legacy_profile_recorded(suite):
    """The in-tree legacy engine/heapq row exists for trajectory tracking
    and moved the same bytes as the fast profile."""
    by_label = {row["label"]: row for row in suite["rows"]}
    legacy = by_label["headline-legacy-heapq"]
    assert legacy["engine"] == "legacy"
    assert legacy["scheduler"] == "heapq"
    assert legacy["read_digest"] == by_label["headline"]["read_digest"]


def test_tracing_perturbs_nothing_and_overhead_recorded(suite):
    """The traced headline replays the identical simulation — same bytes,
    same timeline, same event count, same metrics snapshot — and its
    wall-clock overhead lands in the artifact."""
    assert suite["tracing_invariant"], (
        "tracing changed the simulation outcome (digest, timeline, event "
        "count or metrics differ between headline and headline-traced)")
    by_label = {row["label"]: row for row in suite["rows"]}
    assert by_label["headline"]["tracing"] is False
    assert by_label["headline-traced"]["tracing"] is True
    assert suite["tracing_overhead_pct"] is not None
    artifact = json.loads(ARTIFACT.read_text())
    assert artifact["tracing_overhead_pct"] == suite["tracing_overhead_pct"]


def test_metrics_snapshot_embedded_in_rows(suite):
    """Every collective I/O row carries the unified registry snapshot with
    its partition identities already asserted at collection time."""
    for row in suite["rows"]:
        if row["kind"] != "collective_io":
            continue
        metrics = row["metrics"]
        assert metrics["metadata.cache.lookups"] == (
            metrics["metadata.cache.hits"]
            + metrics["cache.shared.client_hits"]
            + metrics["metadata.client.fetched_lookups"])
        assert metrics["client.bytes_written"] > 0
        assert metrics["net.bytes"] > 0


def test_traced_row_carries_exact_critical_path_breakdown(suite):
    """The traced headline embeds the per-operation critical-path report,
    and the six layers sum exactly to each operation's end-to-end time."""
    import math

    traced = next(row for row in suite["rows"]
                  if row["label"] == "headline-traced")
    report = traced["critpath"]
    assert report["layers"] == ["client_compute", "deferred_complete_overlap",
                                "rpc_queueing", "link_transfer",
                                "shard_service", "coalesce_park"]
    ops = report["operations"]
    settings = bench_settings()
    assert ops["file.write_at_all"]["count"] == settings.num_ranks
    for name, entry in ops.items():
        assert math.isclose(entry["attributed_s"], entry["end_to_end_s"],
                            rel_tol=1e-9, abs_tol=1e-12), name
        assert math.isclose(sum(entry["layers"].values()),
                            entry["attributed_s"],
                            rel_tol=1e-9, abs_tol=1e-12), name
    # untraced rows carry no critpath key at all
    headline = next(row for row in suite["rows"]
                    if row["label"] == "headline")
    assert "critpath" not in headline


def test_latency_digest_columns_in_rows_and_metrics(suite):
    """Collective I/O rows promote the RPC latency digest to flat columns
    and embed the full digest catalog in the metrics snapshot."""
    for row in suite["rows"]:
        if row["kind"] != "collective_io":
            continue
        assert row["rpc_latency_count"] > 0, row["label"]
        assert 0 < row["rpc_latency_p50"] <= row["rpc_latency_p95"] \
            <= row["rpc_latency_p99"], row["label"]
        assert row["rpc_latency_max"] > 0
        metrics = row["metrics"]
        assert metrics["rpc.latency.all.count"] == row["rpc_latency_count"]
        assert any(key.startswith("op.latency.file.write_at_all")
                   for key in metrics), row["label"]


def test_tracing_disabled_wall_clock_within_budget(suite):
    """Overhead guard: the tracing-disabled headline must stay within 2%
    of the pre-observability baseline.  The strict budget needs a
    same-host baseline — set ``REPRO_BENCH_BASELINE_SRC`` to the ``src``
    dir of a pre-observability checkout to measure it live; without one
    the pinned cross-host number gates only gross regressions (see
    ``HOST_DRIFT_ALLOWANCE``).  Wall-clock is noisy, so a miss
    re-measures (min of retries) before failing; smoke mode runs a
    different shape and records without gating."""
    headline = next(row for row in suite["rows"]
                    if row["label"] == "headline")
    assert headline["wall_clock_s"] > 0
    if SMOKE:
        return
    settings = bench_settings()
    live = _live_baseline_wall(settings)
    if live is not None:
        budget = live * TRACING_DISABLED_BUDGET
        baseline_note = f"live same-host baseline {live:.3f}s"
    else:
        budget = (_PRIOR_HEADLINE_WALL * TRACING_DISABLED_BUDGET
                  * HOST_DRIFT_ALLOWANCE)
        baseline_note = (
            f"pinned cross-host baseline {_PRIOR_HEADLINE_WALL:.3f}s "
            f"x{HOST_DRIFT_ALLOWANCE} drift allowance")
    best = headline["wall_clock_s"]
    for _attempt in range(2):
        if best <= budget:
            break
        retry = run_collective_io_point(
            settings.num_ranks, settings.blocks_per_rank,
            settings.block_size, settings.read_rounds,
            settings.num_aggregators, config=ClusterConfig(),
            num_providers=settings.num_providers,
            num_metadata_providers=settings.num_metadata_providers,
            chunk_size=settings.chunk_size, seed=settings.seed)
        best = min(best, retry["wall_clock_s"])
    assert best <= budget, (
        f"tracing-disabled headline {best:.3f}s exceeds "
        f"{TRACING_DISABLED_BUDGET:.0%} of {baseline_note}")


def test_artifact_written_with_populated_columns(suite):
    artifact = json.loads(ARTIFACT.read_text())
    assert artifact["suite"] == "simcore"
    assert artifact["seed_reference"]["commit"] == SEED_REFERENCE["commit"]
    labels = {row["label"] for row in artifact["rows"]}
    assert {"headline", "headline-queued", "churn-calendar",
            "churn-heapq"} <= labels
    for row in artifact["rows"]:
        assert row["wall_clock_s"] >= 0
        assert row["processed_events"] > 0
        assert row["events_per_sec"] >= 0
