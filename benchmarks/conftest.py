"""Benchmark-suite pytest hooks: the opt-in ``--profile`` flag.

``pytest benchmarks/ --profile`` wraps every benchmark item — fixture setup
included, so module-scoped suite runs are attributed to the first test of
their file — in cProfile and prints the top-25 cumulative hotspots after
each item.  Combine with ``REPRO_BENCH_SMOKE=1`` for quick where-does-the-
time-go scans, or with ``-k`` to profile a single suite.
"""

import pytest

from common import profiled


def pytest_addoption(parser):
    parser.addoption(
        "--profile", action="store_true", default=False,
        help="run each benchmark under cProfile and print the top-25 "
             "cumulative hotspots")


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_protocol(item, nextitem):
    if not item.config.getoption("--profile"):
        yield
        return
    with profiled(title=item.nodeid):
        yield
