"""PERF — node-local shared metadata cache microbenchmarks.

Runs the independent-scan workload with several clients packed per compute
node under every cache configuration (private baseline, shared tier,
speculative prefetch, and the eviction-policy sweep under small capacities),
asserts the acceptance shape — metadata control RPCs per logical read
strictly below the private baseline and approaching ``1 / ranks_per_node``
on identical extents, the level-pinning policy beating plain LRU at equal
capacity, byte-identical data everywhere, and the exact lookup partition —
and records every row into ``BENCH_sharedcache.json`` at the repository
root so future PRs can track the perf trajectory.  Every point runs under
both network cost models; cache behaviour and bytes must not depend on
which one shapes the timing.

Set ``REPRO_BENCH_SMOKE=1`` to run the same shapes on a fraction of the
work (what CI does on every push).
"""

import json
import os
import platform
from dataclasses import replace
from pathlib import Path

import pytest

from repro.bench.metrics import shared_rpc_reduction
from repro.bench.reporting import format_table
from repro.bench.sharedcache import (
    SharedCacheSettings,
    run_shared_cache_suite,
    suite_rows,
)

ARTIFACT = Path(__file__).resolve().parents[1] / "BENCH_sharedcache.json"
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

#: acceptance slack: measured reduction vs the ideal ``ranks_per_node``
#: factor (staggered co-tenants can land exactly on the ideal; the slack
#: only guards against harmless bookkeeping shifts below it)
MIN_FRACTION_OF_IDEAL = 0.8

#: both cost models every suite runs under (the acceptance rows are
#: re-reported under "queued"; cache behaviour must not depend on the model)
NETWORK_MODELS = ("bottleneck", "queued")


def bench_settings(network_model: str = "bottleneck") -> SharedCacheSettings:
    settings = SharedCacheSettings()
    settings = settings.scaled_down() if SMOKE else settings
    return replace(settings, config=replace(settings.config,
                                            network_model=network_model))


@pytest.fixture(scope="module")
def suite():
    """Run every point under both network models; emit the JSON artifact."""
    settings = bench_settings()
    results = {model: run_shared_cache_suite(bench_settings(model))
               for model in NETWORK_MODELS}
    rows = [row for model in NETWORK_MODELS
            for row in suite_rows(results[model])]

    reductions = {}
    for model in NETWORK_MODELS:
        baseline = results[model]["identical:private"].sample
        for key, result in results[model].items():
            if key.startswith("identical:shared"):
                reductions[f"{model}:{key}"] = {
                    "reduction": shared_rpc_reduction(baseline, result.sample),
                    "ideal": settings.ranks_per_node,
                }

    artifact = {
        "suite": "sharedcache",
        "smoke": SMOKE,
        "python": platform.python_version(),
        "settings": {
            "num_clients": settings.num_clients,
            "ranks_per_node": settings.ranks_per_node,
            "rounds": settings.rounds,
            "blocks_per_round": settings.blocks_per_round,
            "block_size": settings.block_size,
            "num_providers": settings.num_providers,
            "num_metadata_providers": settings.num_metadata_providers,
            "chunk_size": settings.chunk_size,
            "capacity_sweep": list(settings.capacity_sweep),
            "policies": list(settings.policies),
        },
        "network_models": list(NETWORK_MODELS),
        "metadata_rpc_reduction_vs_private": reductions,
        "rows": rows,
    }
    ARTIFACT.write_text(json.dumps(artifact, indent=2) + "\n")
    print()
    print(format_table(rows, title="shared-cache microbenchmark"))
    return results


def test_all_modes_read_identical_bytes(suite):
    """Every cache configuration of one pattern returns byte-identical
    scan data — sharing, eviction and the network model must never change
    results."""
    settings = bench_settings()
    for pattern in ("identical", "streaming"):
        workload = settings.workload(pattern)
        expected = b"".join(
            workload.expected_pieces(client, round_index)
            for client in range(settings.num_clients)
            for round_index in range(workload.rounds))
        for model, results in suite.items():
            for key, result in results.items():
                if result.sample.pattern == pattern:
                    assert result.read_digest == expected, f"{model}:{key}"


def test_shared_tier_beats_the_private_baseline(suite):
    """The acceptance criterion: with multiple ranks per node, metadata
    RPCs per logical read drop strictly below the private baseline and
    approach ``1 / ranks_per_node`` on identical extents — under both
    network models."""
    settings = bench_settings()
    for model, results in suite.items():
        baseline = results["identical:private"].sample
        shared = results["identical:shared-lru"].sample
        assert shared.rpcs_per_read < baseline.rpcs_per_read, model
        reduction = shared_rpc_reduction(baseline, shared)
        assert reduction >= MIN_FRACTION_OF_IDEAL * settings.ranks_per_node, (
            f"{model}: only {reduction:.2f}x fewer metadata RPCs per read "
            f"(placement factor {settings.ranks_per_node})")


def test_prefetch_cuts_round_trips_and_reports_the_trade(suite):
    """Speculative child prefetch reduces tree-walk RPCs further and the
    extra shipped nodes (its cost) are visible in the artifact."""
    for model, results in suite.items():
        for base_key, prefetch_key in (
                ("identical:private", "identical:private+prefetch"),
                ("identical:shared-lru", "identical:shared-lru+prefetch")):
            base = results[base_key].sample
            prefetched = results[prefetch_key].sample
            assert prefetched.metadata_rpcs < base.metadata_rpcs, \
                f"{model}:{prefetch_key}"
            assert prefetched.prefetched_nodes > 0, f"{model}:{prefetch_key}"
            assert base.prefetched_nodes == 0, f"{model}:{base_key}"


def test_level_pinning_beats_plain_lru_at_equal_capacity(suite):
    """The policy sweep's point: on the streaming pattern under a bounded
    shared tier, pinning the top tree levels must win (fewer fetch RPCs)
    against plain LRU at at least one capacity point."""
    settings = bench_settings()
    level_policy = next(policy for policy in settings.policies
                        if policy.startswith("level"))
    for model, results in suite.items():
        wins = []
        for capacity in settings.capacity_sweep:
            lru = results[f"streaming@{capacity}:lru"].sample
            level = results[f"streaming@{capacity}:{level_policy}"].sample
            wins.append(level.metadata_rpcs < lru.metadata_rpcs)
            # pinning must show up as fewer evictions of reused entries
            assert level.shared_hits >= lru.shared_hits, f"{model}@{capacity}"
        assert any(wins), \
            f"{model}: level-aware policy never beat LRU in the sweep"


def test_lookup_partition_is_exact(suite):
    """The partition is checked against *independently counted* tier
    totals (the caches' own hit+miss counters), not against the sum the
    partition is built from: every lookup the private tier served or
    missed is accounted, and the shared services saw exactly the lookups
    that fell through the private tier."""
    for model, results in suite.items():
        for key, result in results.items():
            sample = result.sample
            label = f"{model}:{key}"
            if sample.mode.startswith("private"):
                assert result.private_tier_lookups == sample.lookups, label
                assert result.shared_tier_lookups == 0, label
                assert sample.shared_hits == 0, label
            elif sample.private_hits or "-only" not in sample.mode:
                assert result.private_tier_lookups == sample.lookups, label
                assert result.shared_tier_lookups \
                    == sample.shared_hits + sample.fetched_lookups, label
            else:
                # policy-sweep modes run without a private tier: the shared
                # services saw every lookup
                assert result.private_tier_lookups == 0, label
                assert result.shared_tier_lookups == sample.lookups, label
            assert sample.fetched_lookups > 0, label


def test_co_located_first_toucher_pays_most_fetches(suite):
    """Placement sanity: in the shared mode the node's stagger-first client
    fetches; later co-tenants ride the shared tier (strictly fewer RPCs
    than the baseline's per-client spend)."""
    settings = bench_settings()
    density = settings.ranks_per_node
    for model, results in suite.items():
        baseline = results["identical:private"].per_client_rpcs
        shared = results["identical:shared-lru"].per_client_rpcs
        for index in range(settings.num_clients):
            if index % density:
                # a co-tenant that never starts first on its node
                assert shared[index] < baseline[index], f"{model}:{index}"


def test_cache_behaviour_does_not_depend_on_the_network_model(suite):
    """Hit/miss/fetch/eviction counters are a function of the access
    pattern and the cache configuration, not of the cost model that
    schedules the RPCs underneath them."""
    for key, bottleneck in suite["bottleneck"].items():
        queued = suite["queued"][key]
        for column in ("metadata_rpcs", "latest_rpcs", "private_hits",
                       "shared_hits", "fetched_lookups", "shared_evictions",
                       "prefetched_nodes"):
            assert getattr(bottleneck.sample, column) \
                == getattr(queued.sample, column), f"{key}:{column}"
        assert bottleneck.read_digest == queued.read_digest, key


def test_artifact_written_with_populated_columns(suite):
    artifact = json.loads(ARTIFACT.read_text())
    assert artifact["suite"] == "sharedcache"
    assert artifact["rows"]
    modes = {row["mode"] for row in artifact["rows"]}
    assert "private" in modes
    assert any(mode.startswith("shared-") for mode in modes)
    patterns = {row["pattern"] for row in artifact["rows"]}
    assert patterns == {"identical", "streaming"}
    assert {row["network_model"] for row in artifact["rows"]} \
        == set(NETWORK_MODELS)
    for row in artifact["rows"]:
        assert row["logical_reads"] > 0
        assert row["metadata_rpcs"] > 0
        assert row["wall_clock_s"] > 0
        assert "rpcs_per_read" in row and "shared_hit_rate" in row
    reductions = artifact["metadata_rpc_reduction_vs_private"]
    assert reductions
    for model in NETWORK_MODELS:
        assert any(
            entry["reduction"] >= MIN_FRACTION_OF_IDEAL * entry["ideal"]
            for key, entry in reductions.items()
            if key.startswith(f"{model}:"))
