"""EXP1 (Figure A): scalability of concurrent overlapped non-contiguous writes.

Paper: "Our first experiment aims at evaluating the scalability of our
approach when increasing the number of clients that concurrently write
non-contiguous regions into the same file", with regions "intentionally
selected in such way as to generate a large number of overlapping[s]".
Expected shape: the versioning backend's aggregated throughput grows with the
number of clients while the locking baseline stays flat/declines, giving a
multi-x advantage under concurrency.
"""

from benchmarks.common import (
    assert_roughly_flat_or_declining,
    assert_scales_up,
    assert_versioning_wins,
    curves_by_backend,
    quick_settings,
)
from repro.bench.experiments import run_exp1_overlap_scalability
from repro.bench.reporting import format_series, format_table


def test_exp1_overlap_scalability(benchmark):
    settings = quick_settings()
    rows = benchmark.pedantic(run_exp1_overlap_scalability, args=(settings,),
                              rounds=1, iterations=1)

    print()
    print(format_table(rows, title="EXP1 — concurrent overlapped "
                                   "non-contiguous writes (atomic mode)"))
    curves = curves_by_backend(rows)
    print(format_series(curves, title="EXP1 series (aggregated MiB/s)"))

    assert_versioning_wins(curves, min_factor=2.0)
    assert_scales_up(curves["versioning"])
    assert_roughly_flat_or_declining(curves["posix-locking"])
