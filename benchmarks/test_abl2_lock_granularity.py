"""ABL2: locking granularity on the baseline file system.

The paper's related-work section contrasts covering-extent locking (lock the
smallest contiguous range covering the whole non-contiguous access, including
bytes nobody touches) with finer-grain alternatives.  This ablation compares,
on identical workloads:

* ``posix-locking``  — covering-extent locks,
* ``posix-listlock`` — one lock per accessed range,
* ``conflict-detect`` — skip locks when the collective access is disjoint,
* ``versioning``     — the paper's approach (no locks at all).
"""

from benchmarks.common import quick_settings
from repro.bench.experiments import run_abl2_lock_granularity
from repro.bench.reporting import format_table


def test_abl2_lock_granularity(benchmark):
    settings = quick_settings()
    rows = benchmark.pedantic(
        run_abl2_lock_granularity, args=(settings,),
        kwargs={"num_clients": 8, "overlaps": (0.0, 0.5)},
        rounds=1, iterations=1)

    print()
    print(format_table(rows, title="ABL2 — locking granularity (8 clients)"))

    def value(backend, overlap):
        return next(row["throughput_mib_s"] for row in rows
                    if row["backend"] == backend and row["overlap"] == overlap)

    # versioning wins in every configuration
    for overlap in (0.0, 0.5):
        for baseline in ("posix-locking", "posix-listlock", "conflict-detect"):
            assert value("versioning", overlap) > value(baseline, overlap)

    # with disjoint accesses, skipping/fining down locks beats extent locking
    assert value("conflict-detect", 0.0) > value("posix-locking", 0.0)
    # under overlap the extent lock's false conflicts on gap bytes make it the
    # slowest (or tied-slowest) locking variant
    assert value("posix-listlock", 0.5) >= value("posix-locking", 0.5) * 0.9
