"""PERF — collective-read microbenchmarks (aggregated metadata resolution).

Runs the collective scan workload through the per-rank independent baseline
and aggregated resolution at several rank counts and resolver factors with
one shared harness, asserts the acceptance shape (metadata control RPCs per
logical collective read reduced by ~the resolver factor ``N/R`` versus the
per-rank baseline, non-resolver ranks at exactly zero, byte-identical data
in every mode, warm caches after the plan broadcast), and records every row
— metadata RPCs, ``latest`` RPCs, exchange traffic, simulated and
wall-clock seconds — into ``BENCH_collective_read.json`` at the repository
root so future PRs can track the perf trajectory.

Set ``REPRO_BENCH_SMOKE=1`` to run the same shapes on a fraction of the
work (what CI does on every push).
"""

import json
import os
import platform
from dataclasses import replace
from pathlib import Path

import pytest

from repro.bench.collective_read import (
    CollectiveReadSettings,
    run_collective_read_suite,
    suite_rows,
)
from repro.bench.metrics import read_rpc_reduction
from repro.bench.reporting import format_table
from repro.mpiio.adio.collective import aggregator_ranks

ARTIFACT = Path(__file__).resolve().parents[1] / "BENCH_collective_read.json"
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

#: acceptance slack: measured reduction vs the ideal resolver factor N/R
#: (the union walk can beat the ideal — resolver stripes dedup shared
#: extents and hints elide whole ``latest`` rounds — so the slack only
#: guards against harmless bookkeeping shifts below it)
MIN_FRACTION_OF_IDEAL = 0.8


#: both cost models every suite runs under (the acceptance rows are
#: re-reported under "queued"; workload bytes must not depend on the model)
NETWORK_MODELS = ("bottleneck", "queued")


def bench_settings(network_model: str = "bottleneck") -> CollectiveReadSettings:
    settings = CollectiveReadSettings()
    settings = settings.scaled_down() if SMOKE else settings
    return replace(settings, config=replace(settings.config,
                                            network_model=network_model))


@pytest.fixture(scope="module")
def suite():
    """Run every point under both network models; emit the JSON artifact."""
    settings = bench_settings()
    results = {model: run_collective_read_suite(bench_settings(model))
               for model in NETWORK_MODELS}
    rows = [row for model in NETWORK_MODELS
            for row in suite_rows(results[model])]

    reductions = {}
    for model in NETWORK_MODELS:
        for key, result in results[model].items():
            sample = result.sample
            if sample.num_resolvers:
                baseline = results[model][f"N{sample.num_ranks}:independent"]
                reductions[f"{model}:{key}"] = {
                    "reduction": read_rpc_reduction(baseline.sample, sample),
                    "ideal": sample.num_ranks / sample.num_resolvers,
                }

    artifact = {
        "suite": "collective-read",
        "smoke": SMOKE,
        "python": platform.python_version(),
        "settings": {
            "rank_counts": list(settings.rank_counts),
            "resolver_counts": list(settings.resolver_counts),
            "rounds": settings.rounds,
            "blocks_per_rank": settings.blocks_per_rank,
            "block_size": settings.block_size,
            "halo_blocks": settings.halo_blocks,
            "hole_every": settings.hole_every,
            "num_providers": settings.num_providers,
            "num_metadata_providers": settings.num_metadata_providers,
            "chunk_size": settings.chunk_size,
        },
        "network_models": list(NETWORK_MODELS),
        "metadata_rpc_reduction_vs_independent": reductions,
        "rows": rows,
    }
    ARTIFACT.write_text(json.dumps(artifact, indent=2) + "\n")
    print()
    print(format_table(rows, title="collective-read microbenchmark"))
    return results


def test_all_modes_read_identical_bytes(suite):
    """The conformance core, repeated at benchmark scale: every mode of one
    rank count returns byte-identical scan data."""
    settings = bench_settings()
    for num_ranks in settings.rank_counts:
        digests = {f"{model}:{key}": result.read_digest
                   for model, results in suite.items()
                   for key, result in results.items()
                   if key.startswith(f"N{num_ranks}:")}
        reference = digests[f"bottleneck:N{num_ranks}:independent"]
        workload = settings.workload(num_ranks)
        content = workload.expected_contents()
        expected_parts = []
        for rank in range(num_ranks):
            for round_index in range(workload.rounds):
                expected_parts.append(
                    workload.expected_pieces(rank, round_index))
            # the post-phase probe re-reads the rank's first round-0 range
            first_offset, first_size = workload.read_pairs(rank, 0)[0]
            expected_parts.append(
                content[first_offset:first_offset + first_size])
        expected = b"".join(expected_parts)
        assert reference == expected, f"N{num_ranks}: baseline diverged"
        for key, digest in digests.items():
            assert digest == reference, key


def test_metadata_rpcs_drop_by_the_resolver_factor(suite):
    """The acceptance criterion: reduction >~ N/R at every collective point,
    re-reported under the queued model as well."""
    for model, results in suite.items():
        for key, result in results.items():
            sample = result.sample
            if not sample.num_resolvers:
                continue
            baseline = results[f"N{sample.num_ranks}:independent"]
            reduction = read_rpc_reduction(baseline.sample, sample)
            ideal = sample.num_ranks / sample.num_resolvers
            assert reduction >= MIN_FRACTION_OF_IDEAL * ideal, (
                f"{model}:{key}: only {reduction:.2f}x fewer metadata RPCs "
                f"per read (resolver factor {ideal:.2f})")


def test_one_latest_rpc_per_cold_collective_at_most(suite):
    """The version pin concentrates ``latest`` on the lead resolver: at most
    one round-trip per collective round (and zero once hints are planted),
    against one per rank per round for the baseline."""
    for model, results in suite.items():
        for key, result in results.items():
            sample = result.sample
            if sample.num_resolvers:
                assert sample.latest_rpcs <= sample.rounds, f"{model}:{key}"
            else:
                assert sample.latest_rpcs \
                    == sample.num_ranks * sample.rounds, f"{model}:{key}"


def test_exchange_traffic_is_reported_for_collective_modes(suite):
    """The aggregation trade — MPI exchange instead of control RPCs — must
    be visible in the artifact, not hidden."""
    for model, results in suite.items():
        for key, result in results.items():
            sample = result.sample
            if sample.num_resolvers:
                assert sample.exchange_bytes > 0, f"{model}:{key}"
                assert sample.plan_nodes_absorbed > 0, f"{model}:{key}"
            else:
                assert sample.exchange_bytes == 0, f"{model}:{key}"
                assert sample.plan_nodes_absorbed == 0, f"{model}:{key}"


def test_zero_extents_travel_as_hole_descriptors(suite):
    """Zero-extent elision: the dump is sparse (``hole_every``), so the
    collective modes must ship a visible volume of never-written bytes as
    16-byte descriptors instead of literal zeros — the ``exchange_bytes``
    drop recorded per row."""
    settings = bench_settings()
    assert settings.hole_every > 0, "the sweep must exercise a sparse dump"
    for model, results in suite.items():
        for key, result in results.items():
            sample = result.sample
            if sample.num_resolvers:
                assert sample.hole_bytes_elided > 0, f"{model}:{key}"
            else:
                assert sample.hole_bytes_elided == 0, f"{model}:{key}"


def test_plan_broadcast_makes_the_post_collective_read_free(suite):
    """After the collective rounds, one independent re-read per rank costs
    zero metadata RPCs in the collective modes (absorbed plan + refreshed
    hint) — while the baseline still pays a ``latest`` per rank."""
    for model, results in suite.items():
        for key, result in results.items():
            sample = result.sample
            if sample.num_resolvers:
                assert sample.post_metadata_rpcs == 0, f"{model}:{key}"
                assert sample.post_latest_rpcs == 0, f"{model}:{key}"
            else:
                assert sample.post_latest_rpcs \
                    == sample.num_ranks, f"{model}:{key}"


def test_non_resolver_ranks_touch_the_control_plane_zero_times(suite):
    """The criterion's per-rank half: outside the resolver set, every rank's
    collective-phase metadata and ``latest`` counters are exactly zero."""
    for model, results in suite.items():
        for key, result in results.items():
            sample = result.sample
            if not sample.num_resolvers:
                continue
            owners = set(aggregator_ranks(sample.num_ranks,
                                          sample.num_resolvers))
            for rank, (metadata, latest) in result.per_rank_rpcs.items():
                if rank not in owners:
                    assert metadata == 0, \
                        f"{model}:{key}: rank {rank} walked the tree"
                    assert latest == 0, \
                        f"{model}:{key}: rank {rank} asked for latest"
            assert sample.metadata_rpcs > 0, f"{model}:{key}"


def test_artifact_written_with_populated_columns(suite):
    artifact = json.loads(ARTIFACT.read_text())
    assert artifact["suite"] == "collective-read"
    assert artifact["rows"]
    modes = {row["mode"] for row in artifact["rows"]}
    assert "independent" in modes
    assert any(mode.startswith("collective-r") for mode in modes)
    assert {row["network_model"] for row in artifact["rows"]} \
        == set(NETWORK_MODELS)
    for row in artifact["rows"]:
        assert row["logical_reads"] > 0
        assert row["metadata_rpcs"] > 0
        assert row["wall_clock_s"] > 0
        assert "metadata_rpcs_per_read" in row and "sim_read_s" in row
    reductions = artifact["metadata_rpc_reduction_vs_independent"]
    assert reductions
    for entry in reductions.values():
        assert entry["reduction"] >= MIN_FRACTION_OF_IDEAL * entry["ideal"]
