"""PERF — collective-write microbenchmarks (two-phase buffering).

Runs the collective checkpoint workload through the per-rank coalesced
baseline and collective buffering at several rank counts and aggregator
factors with one shared harness, asserts the acceptance shape (control
RPCs per logical collective write reduced by ~the aggregation factor
``N/A`` versus the per-rank baseline, byte-identical read-back in every
mode), and records every row — control RPCs, snapshots, exchange traffic,
simulated and wall-clock seconds — into ``BENCH_collective.json`` at the
repository root so future PRs can track the perf trajectory.

Set ``REPRO_BENCH_SMOKE=1`` to run the same shapes on a fraction of the
work (what CI does on every push).
"""

import json
import os
import platform
from dataclasses import replace
from pathlib import Path

import pytest

from repro.bench.collective import (
    CollectiveSettings,
    run_collective_suite,
    suite_rows,
)
from repro.bench.metrics import control_rpc_reduction
from repro.bench.reporting import format_table

ARTIFACT = Path(__file__).resolve().parents[1] / "BENCH_collective.json"
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

#: acceptance slack: measured reduction vs the ideal aggregation factor N/A
#: (the protocol achieves the ideal exactly on this workload; the slack only
#: guards against harmless future bookkeeping shifts)
MIN_FRACTION_OF_IDEAL = 0.8


#: both cost models every suite runs under (the acceptance rows are
#: re-reported under "queued"; workload bytes must not depend on the model)
NETWORK_MODELS = ("bottleneck", "queued")


def bench_settings(network_model: str = "bottleneck") -> CollectiveSettings:
    settings = CollectiveSettings()
    settings = settings.scaled_down() if SMOKE else settings
    return replace(settings, config=replace(settings.config,
                                            network_model=network_model))


@pytest.fixture(scope="module")
def suite():
    """Run every point under both network models; emit the JSON artifact."""
    settings = bench_settings()
    results = {model: run_collective_suite(bench_settings(model))
               for model in NETWORK_MODELS}
    rows = [row for model in NETWORK_MODELS
            for row in suite_rows(results[model])]

    reductions = {}
    for model in NETWORK_MODELS:
        for key, result in results[model].items():
            sample = result.sample
            if sample.num_aggregators:
                baseline = results[model][f"N{sample.num_ranks}:independent"]
                reductions[f"{model}:{key}"] = {
                    "reduction": control_rpc_reduction(baseline.sample, sample),
                    "ideal": sample.num_ranks / sample.num_aggregators,
                }

    artifact = {
        "suite": "collective-buffering",
        "smoke": SMOKE,
        "python": platform.python_version(),
        "settings": {
            "rank_counts": list(settings.rank_counts),
            "aggregator_counts": list(settings.aggregator_counts),
            "rounds": settings.rounds,
            "blocks_per_rank": settings.blocks_per_rank,
            "block_size": settings.block_size,
            "num_providers": settings.num_providers,
            "num_metadata_providers": settings.num_metadata_providers,
            "chunk_size": settings.chunk_size,
        },
        "network_models": list(NETWORK_MODELS),
        "control_rpc_reduction_vs_independent": reductions,
        "rows": rows,
    }
    ARTIFACT.write_text(json.dumps(artifact, indent=2) + "\n")
    print()
    print(format_table(rows, title="collective-write microbenchmark"))
    return results


def test_all_modes_read_identical_bytes(suite):
    """The conformance core, repeated at benchmark scale: every mode of one
    rank count leaves byte-identical file contents — under *both* network
    models (the cost model shapes timing, never data)."""
    settings = bench_settings()
    for num_ranks in settings.rank_counts:
        expected = settings.workload(num_ranks).expected_contents()
        for model, results in suite.items():
            for key, result in results.items():
                if key.startswith(f"N{num_ranks}:"):
                    assert result.read_digest == expected, f"{model}:{key}"


def test_control_rpcs_drop_by_the_aggregation_factor(suite):
    """The acceptance criterion: reduction ~= N/A at every collective point,
    re-reported under the queued model as well."""
    for model, results in suite.items():
        for key, result in results.items():
            sample = result.sample
            if not sample.num_aggregators:
                continue
            baseline = results[f"N{sample.num_ranks}:independent"]
            reduction = control_rpc_reduction(baseline.sample, sample)
            ideal = sample.num_ranks / sample.num_aggregators
            assert reduction >= MIN_FRACTION_OF_IDEAL * ideal, (
                f"{model}:{key}: only {reduction:.2f}x fewer control RPCs "
                f"per write (aggregation factor {ideal:.2f})")


def test_aggregation_folds_snapshots_per_round(suite):
    """N ranks, A aggregators, R rounds -> A snapshots per round, with the
    logical write count unchanged."""
    for model, results in suite.items():
        for key, result in results.items():
            sample = result.sample
            baseline = results[f"N{sample.num_ranks}:independent"]
            assert sample.logical_writes \
                == baseline.sample.logical_writes, f"{model}:{key}"
            if sample.num_aggregators:
                assert sample.snapshots \
                    == sample.num_aggregators * sample.rounds, f"{model}:{key}"
            else:
                assert sample.snapshots \
                    == sample.num_ranks * sample.rounds, f"{model}:{key}"


def test_exchange_traffic_is_reported_for_collective_modes(suite):
    """The aggregation trade — MPI exchange instead of control RPCs — must
    be visible in the artifact, not hidden."""
    for model, results in suite.items():
        for key, result in results.items():
            sample = result.sample
            if sample.num_aggregators:
                assert sample.exchange_bytes > 0, f"{model}:{key}"
            else:
                assert sample.exchange_bytes == 0, f"{model}:{key}"


def test_rpc_counts_do_not_depend_on_the_network_model(suite):
    """The control-plane story — RPCs, snapshots, exchange bytes — is a
    function of the protocol, not of the cost model underneath it."""
    for key, bottleneck in suite["bottleneck"].items():
        queued = suite["queued"][key]
        for column in ("logical_writes", "snapshots", "control_rpcs",
                       "metadata_put_rpcs", "exchange_bytes"):
            assert getattr(bottleneck.sample, column) \
                == getattr(queued.sample, column), f"{key}:{column}"


def test_artifact_written_with_populated_columns(suite):
    artifact = json.loads(ARTIFACT.read_text())
    assert artifact["suite"] == "collective-buffering"
    assert artifact["rows"]
    modes = {row["mode"] for row in artifact["rows"]}
    assert "independent" in modes
    assert any(mode.startswith("collective-a") for mode in modes)
    assert {row["network_model"] for row in artifact["rows"]} \
        == set(NETWORK_MODELS)
    for row in artifact["rows"]:
        assert row["logical_writes"] > 0
        assert row["control_rpcs"] > 0
        assert row["wall_clock_s"] > 0
        assert "control_rpcs_per_write" in row and "sim_write_s" in row
    reductions = artifact["control_rpc_reduction_vs_independent"]
    assert reductions
    for entry in reductions.values():
        assert entry["reduction"] >= MIN_FRACTION_OF_IDEAL * entry["ideal"]
