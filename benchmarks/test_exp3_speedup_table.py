"""EXP3: the headline result — "3.5 times to 10 times higher" throughput.

The paper summarizes both experiment series with an aggregated-throughput
improvement of 3.5x-10x for the versioning backend over the Lustre +
locking baseline.  This table recomputes the speedup for every measured
point; the assertion checks that every concurrent point lies in (or above)
the paper's band — our simulated lock manager degrades faster than a real
Lustre under heavy contention, so the upper end can exceed 10x (recorded in
EXPERIMENTS.md).
"""

from benchmarks.common import quick_settings
from repro.bench.experiments import run_exp3_speedup_table
from repro.bench.reporting import format_table


def test_exp3_speedup_table(benchmark):
    settings = quick_settings(client_counts=(1, 2, 4, 8))
    rows = benchmark.pedantic(run_exp3_speedup_table, args=(settings,),
                              rounds=1, iterations=1)

    print()
    print(format_table(rows, title="EXP3 — speedup of versioning over "
                                   "Lustre-like locking (paper: 3.5x-10x)"))

    speedups = [row["speedup"] for row in rows if row["clients"] >= 2]
    assert speedups, "no concurrent data points"
    # every concurrent point shows a win (mild concurrency can sit below the
    # paper's band, e.g. two tiles sharing a single border)...
    assert min(speedups) >= 1.5
    # ...most concurrent points show a multi-x advantage...
    assert sum(1 for value in speedups if value >= 3.5) >= len(speedups) // 2
    # ...and the band overlaps the paper's 3.5x-10x range
    assert any(3.5 <= value <= 10.0 for value in speedups) or min(speedups) > 10.0
