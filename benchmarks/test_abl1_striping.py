"""ABL1: data striping — throughput vs number of data providers.

Design principle 2 of the paper: striping the BLOB over many providers with a
round-robin allocation spreads the write workload and raises the aggregated
throughput.  The sweep fixes the client count and varies the provider count;
throughput must grow until the clients (not the providers) become the
bottleneck.  The load-imbalance column shows the round-robin allocation
keeping providers evenly filled.
"""

from benchmarks.common import quick_settings
from repro.bench.experiments import run_abl1_striping
from repro.bench.reporting import format_table


def test_abl1_striping(benchmark):
    settings = quick_settings()
    rows = benchmark.pedantic(
        run_abl1_striping, args=(settings,),
        kwargs={"provider_counts": (1, 2, 4, 8), "num_clients": 8},
        rounds=1, iterations=1)

    print()
    print(format_table(rows, title="ABL1 — versioning throughput vs number of "
                                   "data providers (8 clients)"))

    by_providers = {row["providers"]: row["throughput_mib_s"] for row in rows}
    # striping helps: 8 providers must clearly beat a single provider
    assert by_providers[8] > by_providers[1] * 1.5
    # throughput is monotone (within a small tolerance) in provider count
    counts = sorted(by_providers)
    for smaller, larger in zip(counts, counts[1:]):
        assert by_providers[larger] >= by_providers[smaller] * 0.9
    # round-robin keeps the providers balanced
    assert all(row["load_imbalance"] < 1.5 for row in rows)
