"""PERF — write-pipeline microbenchmarks (coalescing + overlapped commits).

Runs the queued-small-writes workload through the three write-path
configurations of :mod:`repro.bench.writepath` with one shared harness,
asserts the acceptance shape (>= 2x fewer control-plane round-trips per
logical write for the pipelined+coalesced path vs the serialized baseline,
write-through cache warmth from the very first read, byte-identical
read-back in every mode), and records every row — control RPCs, coalescing
factor, cache hit rates, simulated and wall-clock seconds — into
``BENCH_writepath.json`` at the repository root so future PRs can track the
perf trajectory.  A cache-capacity sweep (LRU-bounded metadata caches)
rides along in the same artifact.

Set ``REPRO_BENCH_SMOKE=1`` to run the same shapes on a fraction of the
work (what CI does on every push).
"""

import json
import os
import platform
from dataclasses import replace
from pathlib import Path

import pytest

from repro.bench.metrics import control_rpc_reduction
from repro.bench.reporting import format_table
from repro.bench.writepath import (
    WRITE_MODES,
    WritePathSettings,
    run_cache_capacity_sweep,
    run_write_path_suite,
)

ARTIFACT = Path(__file__).resolve().parents[1] / "BENCH_writepath.json"
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

#: acceptance threshold: coalesced+pipelined vs baseline control round-trips
#: per logical write
MIN_CONTROL_RPC_REDUCTION = 2.0


#: both cost models every suite runs under (the cost model shapes timing,
#: never bytes or RPC counts — asserted below)
NETWORK_MODELS = ("bottleneck", "queued")


def bench_settings(network_model: str = "bottleneck") -> WritePathSettings:
    settings = WritePathSettings()
    settings = settings.scaled_down() if SMOKE else settings
    return replace(settings, config=replace(settings.config,
                                            network_model=network_model))


@pytest.fixture(scope="module")
def suite():
    """Run all modes under both network models; emit the JSON artifact."""
    settings = bench_settings()
    by_model = {model: run_write_path_suite(bench_settings(model))
                for model in NETWORK_MODELS}
    results = by_model["bottleneck"]
    sweep_rows = run_cache_capacity_sweep(
        settings, unbounded=results["pipelined-coalesced"])
    rows = [by_model[model][mode].sample.as_row()
            for model in NETWORK_MODELS for mode in WRITE_MODES]
    artifact = {
        "suite": "write-pipeline",
        "smoke": SMOKE,
        "python": platform.python_version(),
        "settings": {
            "num_clients": settings.num_clients,
            "writes_per_client": settings.writes_per_client,
            "regions_per_write": settings.regions_per_write,
            "region_size": settings.region_size,
            "hole_size": settings.hole_size,
            "read_repeats": settings.read_repeats,
            "num_providers": settings.num_providers,
            "num_metadata_providers": settings.num_metadata_providers,
            "chunk_size": settings.chunk_size,
        },
        "network_models": list(NETWORK_MODELS),
        "control_rpc_reduction_vs_baseline": {
            f"{model}:{mode}": control_rpc_reduction(
                by_model[model]["baseline"].sample,
                by_model[model][mode].sample)
            for model in NETWORK_MODELS for mode in WRITE_MODES
        },
        "rows": rows,
        "cache_capacity_sweep": sweep_rows,
    }
    ARTIFACT.write_text(json.dumps(artifact, indent=2) + "\n")
    print()
    print(format_table(rows, title="write-pipeline microbenchmark"))
    print(format_table(sweep_rows, title="cache capacity sweep"))
    return by_model


def test_all_modes_read_identical_bytes(suite):
    """Every mode — and every network model — returns the same bytes."""
    baseline = suite["bottleneck"]["baseline"].read_digest
    for model, results in suite.items():
        for mode in WRITE_MODES:
            assert results[mode].read_digest == baseline, f"{model}:{mode}"


def test_coalescing_folds_writes_into_fewer_snapshots(suite):
    for model, results in suite.items():
        baseline = results["baseline"].sample
        coalesced = results["pipelined-coalesced"].sample
        assert baseline.coalescing_factor == 1.0, model
        assert results["pipelined"].sample.coalescing_factor == 1.0, model
        assert coalesced.coalescing_factor > 1.5, model
        assert coalesced.logical_writes == baseline.logical_writes, model
        assert coalesced.snapshots < baseline.snapshots, model


def test_control_rpc_reduction_at_least_2x(suite):
    """The acceptance criterion: >= 2x fewer control round-trips per write —
    under both network models (RPC counts are protocol, not cost-model)."""
    for model, results in suite.items():
        reduction = control_rpc_reduction(results["baseline"].sample,
                                          results["pipelined-coalesced"].sample)
        assert reduction >= MIN_CONTROL_RPC_REDUCTION, (
            f"{model}: only {reduction:.2f}x fewer control RPCs per write")


def test_rpc_counts_do_not_depend_on_the_network_model(suite):
    for mode in WRITE_MODES:
        bottleneck = suite["bottleneck"][mode].sample
        queued = suite["queued"][mode].sample
        for column in ("logical_writes", "snapshots", "control_rpcs",
                       "metadata_put_rpcs"):
            assert getattr(bottleneck, column) \
                == getattr(queued, column), f"{mode}:{column}"


def test_write_through_cache_is_warm_from_the_first_read(suite):
    """Write-through population: read-after-write hits before any fetch."""
    results = suite["bottleneck"]
    assert results["baseline"].sample.first_read_cache_hit_rate == 0.0
    assert results["pipelined"].sample.first_read_cache_hit_rate > 0.0
    # a coalesced writer published its whole span in one snapshot, so its
    # first read-back traversal runs almost entirely out of its own cache
    assert results["pipelined-coalesced"].sample.first_read_cache_hit_rate > 0.5


def test_pipelining_does_not_slow_the_write_phase(suite):
    for model, results in suite.items():
        assert results["pipelined"].sample.sim_write_s \
            <= results["baseline"].sample.sim_write_s * 1.05, model
        assert results["pipelined-coalesced"].sample.sim_write_s \
            <= results["baseline"].sample.sim_write_s * 1.05, model


def test_artifact_written_with_populated_columns(suite):
    artifact = json.loads(ARTIFACT.read_text())
    assert artifact["suite"] == "write-pipeline"
    modes = {row["mode"] for row in artifact["rows"]}
    assert modes == set(WRITE_MODES)
    for row in artifact["rows"]:
        assert row["logical_writes"] > 0
        assert row["control_rpcs"] > 0
        assert row["wall_clock_s"] > 0
        assert "coalescing_factor" in row and "first_read_cache_hit_rate" in row
    assert {row["network_model"] for row in artifact["rows"]} \
        == set(NETWORK_MODELS)
    for model in NETWORK_MODELS:
        assert artifact["control_rpc_reduction_vs_baseline"][
            f"{model}:pipelined-coalesced"] >= MIN_CONTROL_RPC_REDUCTION
    sweep = artifact["cache_capacity_sweep"]
    assert len(sweep) >= 2
    capacities = [row["capacity"] for row in sweep]
    assert "unbounded" in capacities
    bounded = [row for row in sweep if row["capacity"] != "unbounded"]
    assert any(row["cache_evictions"] > 0 for row in bounded), (
        "the sweep's bounded capacities never evicted — shrink the capacities")
